// Package zorder implements the z-order (Morton) space-filling curve used
// in Section IV-C of the paper to linearize the multi-dimensional grids of
// the intermediate LSH spaces onto [0,1], so that per-plan point
// distributions can be summarized in ordinary unidimensional database
// histograms.
//
// A Curve is configured with a dimensionality s and a per-axis bit depth;
// it maps grid cell coordinates (each in [0, 2^bits)) to a single integer
// z-value by bit interleaving, and normalizes z-values onto [0,1).
package zorder

import "fmt"

// MaxTotalBits is the largest product dims*bits a Curve supports; z-values
// must fit in an int64-safe uint64.
const MaxTotalBits = 62

// Curve is a z-order curve over an s-dimensional grid with 2^bits cells per
// axis. The zero value is not usable; call New.
type Curve struct {
	dims int
	bits int
}

// New returns a z-order curve for the given dimensionality and per-axis bit
// depth. It returns an error if dims or bits are non-positive or the total
// number of bits exceeds MaxTotalBits.
func New(dims, bits int) (*Curve, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("zorder: dims must be positive, got %d", dims)
	}
	if bits <= 0 {
		return nil, fmt.Errorf("zorder: bits must be positive, got %d", bits)
	}
	if dims*bits > MaxTotalBits {
		return nil, fmt.Errorf("zorder: dims*bits = %d exceeds %d", dims*bits, MaxTotalBits)
	}
	return &Curve{dims: dims, bits: bits}, nil
}

// MustNew is like New but panics on error. Intended for static configurations.
func MustNew(dims, bits int) *Curve {
	c, err := New(dims, bits)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns the dimensionality of the curve.
func (c *Curve) Dims() int { return c.dims }

// Bits returns the per-axis bit depth.
func (c *Curve) Bits() int { return c.bits }

// CellsPerAxis returns the number of grid cells along each axis, 2^bits.
func (c *Curve) CellsPerAxis() uint32 { return 1 << uint(c.bits) }

// TotalCells returns the total number of grid cells, 2^(dims*bits).
func (c *Curve) TotalCells() uint64 { return 1 << uint(c.dims*c.bits) }

// Encode interleaves the bits of the cell coordinates into a single
// z-value. Coordinate i contributes its bit k to position k*dims + i, so
// the most significant interleaved bits come from the most significant
// coordinate bits of every axis — the standard Morton order.
//
// Encode panics if len(cell) != Dims() or any coordinate is out of range.
func (c *Curve) Encode(cell []uint32) uint64 {
	if len(cell) != c.dims {
		panic(fmt.Sprintf("zorder: expected %d coordinates, got %d", c.dims, len(cell)))
	}
	limit := c.CellsPerAxis()
	var z uint64
	for i, x := range cell {
		if x >= limit {
			panic(fmt.Sprintf("zorder: coordinate %d = %d out of range [0,%d)", i, x, limit))
		}
		for k := 0; k < c.bits; k++ {
			bit := uint64(x>>uint(k)) & 1
			z |= bit << uint(k*c.dims+i)
		}
	}
	return z
}

// Decode is the inverse of Encode: it splits a z-value back into per-axis
// cell coordinates. Bits above dims*bits are ignored.
func (c *Curve) Decode(z uint64) []uint32 {
	cell := make([]uint32, c.dims)
	for i := 0; i < c.dims; i++ {
		var x uint32
		for k := 0; k < c.bits; k++ {
			bit := uint32(z>>uint(k*c.dims+i)) & 1
			x |= bit << uint(k)
		}
		cell[i] = x
	}
	return cell
}

// Normalize maps a z-value onto [0,1): the cell's position along the curve
// divided by the total number of cells. Together with CellWidth this places
// each grid cell at a half-open interval of the unit line.
func (c *Curve) Normalize(z uint64) float64 {
	return float64(z) / float64(c.TotalCells())
}

// Denormalize maps a position on [0,1) back to the z-value of the cell that
// covers it. Values outside [0,1) are clamped.
func (c *Curve) Denormalize(v float64) uint64 {
	if v <= 0 {
		return 0
	}
	total := c.TotalCells()
	z := uint64(v * float64(total))
	if z >= total {
		z = total - 1
	}
	return z
}

// CellWidth returns the width of one grid cell on the normalized [0,1) line.
func (c *Curve) CellWidth() float64 { return 1 / float64(c.TotalCells()) }

// CellOf quantizes a point with coordinates in [0,1] (values outside are
// clamped) to grid cell coordinates.
func (c *Curve) CellOf(point []float64) []uint32 {
	cell := make([]uint32, c.dims)
	c.CellOfInto(cell, point)
	return cell
}

// CellOfInto is CellOf without the allocation: it quantizes point into
// cell, which must have length Dims(). It panics on length mismatches,
// like CellOf.
func (c *Curve) CellOfInto(cell []uint32, point []float64) {
	if len(point) != c.dims {
		panic(fmt.Sprintf("zorder: expected %d coordinates, got %d", c.dims, len(point)))
	}
	if len(cell) != c.dims {
		panic(fmt.Sprintf("zorder: cell buffer has %d coordinates, need %d", len(cell), c.dims))
	}
	limit := c.CellsPerAxis()
	for i, v := range point {
		if v <= 0 {
			cell[i] = 0
			continue
		}
		x := uint32(v * float64(limit))
		if x >= limit {
			x = limit - 1
		}
		cell[i] = x
	}
}

// Value maps a point in [0,1]^dims directly to its normalized z-order
// position in [0,1). This is the T_ij(x) linearization of Section IV-C.
func (c *Curve) Value(point []float64) float64 {
	return c.Normalize(c.Encode(c.CellOf(point)))
}

// ValueWith is Value using a caller-provided cell scratch buffer of length
// Dims(), so the hot predict path performs no allocation.
func (c *Curve) ValueWith(cell []uint32, point []float64) float64 {
	c.CellOfInto(cell, point)
	return c.Normalize(c.Encode(cell))
}
