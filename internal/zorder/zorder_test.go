package zorder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name       string
		dims, bits int
		wantErr    bool
	}{
		{"ok-2x8", 2, 8, false},
		{"ok-6x10", 6, 10, false},
		{"zero-dims", 0, 8, true},
		{"neg-dims", -1, 8, true},
		{"zero-bits", 2, 0, true},
		{"too-many-bits", 7, 9, true}, // 63 > 62
		{"max-bits", 2, 31, false},    // 62 ok
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.dims, tc.bits)
			if (err != nil) != tc.wantErr {
				t.Errorf("New(%d,%d) err = %v, wantErr %v", tc.dims, tc.bits, err, tc.wantErr)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 1)
}

func TestEncodeKnownValues(t *testing.T) {
	c := MustNew(2, 2)
	// Classic 2-D Morton order on a 4x4 grid.
	tests := []struct {
		x, y uint32
		z    uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
	}
	for _, tc := range tests {
		if got := c.Encode([]uint32{tc.x, tc.y}); got != tc.z {
			t.Errorf("Encode(%d,%d) = %d, want %d", tc.x, tc.y, got, tc.z)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range []struct{ dims, bits int }{{1, 16}, {2, 10}, {3, 8}, {4, 8}, {6, 10}} {
		c := MustNew(cfg.dims, cfg.bits)
		for i := 0; i < 500; i++ {
			cell := make([]uint32, cfg.dims)
			for j := range cell {
				cell[j] = uint32(rng.Intn(int(c.CellsPerAxis())))
			}
			z := c.Encode(cell)
			back := c.Decode(z)
			for j := range cell {
				if back[j] != cell[j] {
					t.Fatalf("dims=%d bits=%d cell=%v decoded=%v", cfg.dims, cfg.bits, cell, back)
				}
			}
		}
	}
}

// Property: Encode is injective — two distinct cells map to distinct z-values.
func TestEncodeInjective(t *testing.T) {
	c := MustNew(3, 4)
	seen := make(map[uint64][]uint32)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			for w := uint32(0); w < 16; w++ {
				z := c.Encode([]uint32{x, y, w})
				if prev, ok := seen[z]; ok {
					t.Fatalf("collision: %v and %v -> %d", prev, []uint32{x, y, w}, z)
				}
				seen[z] = []uint32{x, y, w}
			}
		}
	}
	if len(seen) != 16*16*16 {
		t.Fatalf("expected 4096 distinct values, got %d", len(seen))
	}
}

func TestNormalizeDenormalize(t *testing.T) {
	c := MustNew(2, 8)
	for _, z := range []uint64{0, 1, 100, c.TotalCells() - 1} {
		v := c.Normalize(z)
		if v < 0 || v >= 1 {
			t.Errorf("Normalize(%d) = %v out of [0,1)", z, v)
		}
		if got := c.Denormalize(v); got != z {
			t.Errorf("Denormalize(Normalize(%d)) = %d", z, got)
		}
	}
	if got := c.Denormalize(-0.5); got != 0 {
		t.Errorf("Denormalize(-0.5) = %d, want 0", got)
	}
	if got := c.Denormalize(2.0); got != c.TotalCells()-1 {
		t.Errorf("Denormalize(2.0) = %d, want last cell", got)
	}
}

func TestCellOfClamping(t *testing.T) {
	c := MustNew(2, 4)
	cell := c.CellOf([]float64{-0.3, 1.7})
	if cell[0] != 0 || cell[1] != 15 {
		t.Errorf("CellOf clamping = %v", cell)
	}
	cell = c.CellOf([]float64{1.0, 0.999999})
	if cell[0] != 15 || cell[1] != 15 {
		t.Errorf("CellOf(1.0, ~1) = %v, want [15 15]", cell)
	}
}

func TestValueMonotoneOnDiagonal(t *testing.T) {
	// Along the main diagonal the z-order value must be non-decreasing
	// (cells (k,k) have increasing Morton codes).
	c := MustNew(2, 6)
	prev := -1.0
	for i := 0; i < 64; i++ {
		p := (float64(i) + 0.5) / 64
		v := c.Value([]float64{p, p})
		if v <= prev {
			t.Fatalf("diagonal not strictly increasing at i=%d: %v <= %v", i, v, prev)
		}
		prev = v
	}
}

// Property: z-order locality — points in the same cell map to the same
// value, and nearby points are on average much closer on the curve than
// random point pairs. This is the property Section IV-C relies on to store
// plan clusters in few histogram buckets.
func TestLocalityPreservation(t *testing.T) {
	c := MustNew(2, 8)
	rng := rand.New(rand.NewSource(42))
	const n = 4000
	var nearSum, farSum float64
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		// Near neighbor: within one cell width.
		eps := c.CellWidth() * 200 // 2^-16 total cells; use small spatial offset
		_ = eps
		near := []float64{x[0] + (rng.Float64()-0.5)*0.01, x[1] + (rng.Float64()-0.5)*0.01}
		far := []float64{rng.Float64(), rng.Float64()}
		nearSum += math.Abs(c.Value(x) - c.Value(near))
		farSum += math.Abs(c.Value(x) - c.Value(far))
	}
	if nearSum >= farSum/4 {
		t.Errorf("z-order locality too weak: near avg %v vs far avg %v", nearSum/n, farSum/n)
	}
}

// Property (testing/quick): round trip holds for arbitrary coordinates.
func TestRoundTripQuick(t *testing.T) {
	c := MustNew(3, 10)
	f := func(a, b, d uint32) bool {
		cell := []uint32{a % 1024, b % 1024, d % 1024}
		back := c.Decode(c.Encode(cell))
		return back[0] == cell[0] && back[1] == cell[1] && back[2] == cell[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodePanicsOutOfRange(t *testing.T) {
	c := MustNew(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range coordinate")
		}
	}()
	c.Encode([]uint32{16, 0})
}

func TestEncodePanicsWrongDims(t *testing.T) {
	c := MustNew(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dimension count")
		}
	}()
	c.Encode([]uint32{1})
}
