package tpch

import (
	"math"
	"testing"
)

func testDB(t *testing.T) *Database {
	t.Helper()
	db, err := Generate(Config{Scale: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Scale: 0}); err == nil {
		t.Error("expected error for scale 0")
	}
}

func TestGenerateCardinalities(t *testing.T) {
	db := testDB(t)
	tests := []struct {
		table string
		want  int
	}{
		{"region", 5},
		{"nation", 25},
		{"supplier", sf1Supplier / 400},
		{"part", sf1Part / 400},
		{"partsupp", sf1PartSupp / 400},
		{"customer", sf1Customer / 400},
		{"orders", sf1Orders / 400},
	}
	for _, tc := range tests {
		if got := db.MustTable(tc.table).NumRows(); got != tc.want {
			t.Errorf("%s rows = %d, want %d", tc.table, got, tc.want)
		}
	}
	// lineitem is generated order-by-order; it must be close to the target
	// and every line must reference a valid order.
	li := db.MustTable("lineitem")
	if n := li.NumRows(); n < sf1Lineitem/400*8/10 || n > sf1Lineitem/400 {
		t.Errorf("lineitem rows = %d, want within [%d, %d]", n, sf1Lineitem/400*8/10, sf1Lineitem/400)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Config{Scale: 400, Seed: 99})
	b := MustGenerate(Config{Scale: 400, Seed: 99})
	ca := a.MustTable("lineitem").MustColumn("l_shipdate").Nums
	cb := b.MustTable("lineitem").MustColumn("l_shipdate").Nums
	if len(ca) != len(cb) {
		t.Fatalf("row counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("row %d differs: %v vs %v", i, ca[i], cb[i])
		}
	}
	c := MustGenerate(Config{Scale: 400, Seed: 100})
	cc := c.MustTable("lineitem").MustColumn("l_shipdate").Nums
	same := 0
	for i := range cc {
		if i < len(ca) && ca[i] == cc[i] {
			same++
		}
	}
	if same == len(cc) {
		t.Error("different seeds produced identical data")
	}
}

func TestForeignKeysResolve(t *testing.T) {
	db := testDB(t)
	fk := []struct {
		childTable, childCol, parentTable, parentCol string
	}{
		{"nation", "n_regionkey", "region", "r_regionkey"},
		{"supplier", "s_nationkey", "nation", "n_nationkey"},
		{"customer", "c_nationkey", "nation", "n_nationkey"},
		{"orders", "o_custkey", "customer", "c_custkey"},
		{"lineitem", "l_orderkey", "orders", "o_orderkey"},
		{"lineitem", "l_partkey", "part", "p_partkey"},
		{"lineitem", "l_suppkey", "supplier", "s_suppkey"},
		{"partsupp", "ps_partkey", "part", "p_partkey"},
		{"partsupp", "ps_suppkey", "supplier", "s_suppkey"},
	}
	for _, f := range fk {
		parent := db.MustTable(f.parentTable).MustColumn(f.parentCol).Nums
		valid := make(map[float64]bool, len(parent))
		for _, v := range parent {
			valid[v] = true
		}
		child := db.MustTable(f.childTable).MustColumn(f.childCol).Nums
		for i, v := range child {
			if !valid[v] {
				t.Fatalf("%s.%s row %d = %v has no parent in %s.%s",
					f.childTable, f.childCol, i, v, f.parentTable, f.parentCol)
			}
		}
	}
}

func TestPrimaryKeysUnique(t *testing.T) {
	db := testDB(t)
	for _, pk := range []struct{ table, col string }{
		{"region", "r_regionkey"}, {"nation", "n_nationkey"},
		{"supplier", "s_suppkey"}, {"part", "p_partkey"},
		{"customer", "c_custkey"}, {"orders", "o_orderkey"},
	} {
		col := db.MustTable(pk.table).MustColumn(pk.col).Nums
		seen := make(map[float64]bool, len(col))
		for _, v := range col {
			if seen[v] {
				t.Fatalf("%s.%s: duplicate key %v", pk.table, pk.col, v)
			}
			seen[v] = true
		}
	}
}

func TestDateColumnsGaussian(t *testing.T) {
	db := testDB(t)
	// Every table has an added date column; its values must lie in the date
	// window and be concentrated around the middle (Gaussian, not uniform).
	dateCols := map[string]string{
		"region": "r_date", "nation": "n_date", "supplier": "s_date",
		"part": "p_date", "partsupp": "ps_date", "customer": "c_date",
		"orders": "o_date", "lineitem": "l_date",
	}
	for table, col := range dateCols {
		nums := db.MustTable(table).MustColumn(col).Nums
		mid := (DateMin + DateMax) / 2
		within := 0
		for _, v := range nums {
			if v < DateMin || v > DateMax {
				t.Fatalf("%s.%s value %v outside window", table, col, v)
			}
			if math.Abs(v-mid) < (DateMax-DateMin)/6 {
				within++
			}
		}
		// For a Gaussian with σ = range/6, ~68% lies within ±σ of the mean;
		// a uniform would put only ~33% there. Only check the larger tables.
		if len(nums) >= 100 && float64(within)/float64(len(nums)) < 0.55 {
			t.Errorf("%s.%s looks uniform: %.2f within ±σ", table, col, float64(within)/float64(len(nums)))
		}
	}
}

func TestStandardIndexesBuilt(t *testing.T) {
	db := testDB(t)
	for table, cols := range StandardIndexColumns {
		tb := db.MustTable(table)
		for _, col := range cols {
			if !tb.HasIndex(col) {
				t.Errorf("missing index %s.%s", table, col)
			}
		}
	}
	// SkipIndexes must produce none.
	bare := MustGenerate(Config{Scale: 400, Seed: 1, SkipIndexes: true})
	if bare.MustTable("orders").HasIndex("o_orderkey") {
		t.Error("SkipIndexes did not suppress index creation")
	}
}

func TestIndexRangeRows(t *testing.T) {
	db := testDB(t)
	li := db.MustTable("lineitem")
	ix := li.Indexes["l_shipdate"]
	if ix == nil {
		t.Fatal("no l_shipdate index")
	}
	col := li.MustColumn("l_shipdate").Nums
	lo, hi := 500.0, 800.0
	rows := ix.RangeRows(lo, hi)
	want := 0
	for _, v := range col {
		if v >= lo && v <= hi {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("RangeRows returned %d rows, want %d", len(rows), want)
	}
	prev := math.Inf(-1)
	for _, r := range rows {
		v := col[r]
		if v < lo || v > hi {
			t.Fatalf("row %d key %v outside [%v,%v]", r, v, lo, hi)
		}
		if v < prev {
			t.Fatal("rows not in key order")
		}
		prev = v
	}
	// Empty and inverted ranges.
	if got := ix.RangeRows(1e9, 2e9); len(got) != 0 {
		t.Errorf("out-of-domain range returned %d rows", len(got))
	}
	if got := ix.RangeRows(800, 500); len(got) != 0 {
		t.Errorf("inverted range returned %d rows", len(got))
	}
}

func TestBuildIndexErrors(t *testing.T) {
	db := testDB(t)
	tb := db.MustTable("customer")
	if err := tb.BuildIndex("no_such_column"); err == nil {
		t.Error("expected error for unknown column")
	}
	if err := tb.BuildIndex("c_mktsegment"); err == nil {
		t.Error("expected error for string column")
	}
}

func TestTableAccessors(t *testing.T) {
	db := testDB(t)
	if db.Table("nope") != nil {
		t.Error("Table(nope) should be nil")
	}
	names := db.TableNames()
	if len(names) != 8 {
		t.Errorf("TableNames = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable should panic for unknown table")
		}
	}()
	db.MustTable("nope")
}

func TestColumnAccessors(t *testing.T) {
	db := testDB(t)
	tb := db.MustTable("part")
	if tb.Column("nope") != nil {
		t.Error("Column(nope) should be nil")
	}
	c := tb.MustColumn("p_brand")
	if c.Kind != KindString || c.Len() != tb.NumRows() {
		t.Errorf("p_brand kind=%v len=%d", c.Kind, c.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColumn should panic")
		}
	}()
	tb.MustColumn("nope")
}
