package tpch

import (
	"fmt"
	"math/rand"
)

// TPC-H SF1 base cardinalities; a Database is generated at these counts
// divided by Config.Scale (region and nation are fixed-size).
const (
	sf1Supplier = 10000
	sf1Part     = 200000
	sf1PartSupp = 800000
	sf1Customer = 150000
	sf1Orders   = 1500000
	sf1Lineitem = 6000000
)

// Date columns span the TPC-H window 1992-01-01 .. 1998-12-31, stored as
// days since 1992-01-01.
const (
	DateMin = 0.0
	DateMax = 2557.0
)

// Config controls database generation.
type Config struct {
	// Scale divides the TPC-H SF1 cardinalities; Scale=100 yields a 60k-row
	// lineitem. Must be >= 1.
	Scale int
	// Seed drives all randomness; equal seeds produce identical databases.
	Seed int64
	// SkipIndexes suppresses index creation (used by tests and by
	// experiments that want to force sequential plans).
	SkipIndexes bool
}

// DefaultConfig is the configuration used throughout the experiments:
// 1/100 of TPC-H SF1, matching the paper's setup qualitatively while
// keeping experiment runtimes laptop-friendly.
func DefaultConfig() Config { return Config{Scale: 100, Seed: 2012} }

var (
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	brands     = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22",
		"Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#41"}
	types   = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	nations = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
		"KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
)

// Generate builds the database described by cfg.
func Generate(cfg Config) (*Database, error) {
	if cfg.Scale < 1 {
		return nil, fmt.Errorf("tpch: scale must be >= 1, got %d", cfg.Scale)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := &Database{Tables: make(map[string]*Table), Scale: cfg.Scale, Seed: cfg.Seed}

	nSupp := max(sf1Supplier/cfg.Scale, 10)
	nPart := max(sf1Part/cfg.Scale, 40)
	nPartSupp := max(sf1PartSupp/cfg.Scale, 160)
	nCust := max(sf1Customer/cfg.Scale, 15)
	nOrders := max(sf1Orders/cfg.Scale, 150)
	nLine := max(sf1Lineitem/cfg.Scale, 600)

	// gaussDate draws the artificial x_date values: Gaussian over the
	// TPC-H date window, clamped, per the paper's Appendix A.
	gaussDate := func() float64 {
		v := (DateMin+DateMax)/2 + rng.NormFloat64()*(DateMax-DateMin)/6
		if v < DateMin {
			v = DateMin
		}
		if v > DateMax {
			v = DateMax
		}
		return v
	}
	uniformDate := func() float64 { return DateMin + rng.Float64()*(DateMax-DateMin) }

	// region
	{
		key := numCol("r_regionkey", 5)
		name := strCol("r_name", 5)
		date := numCol("r_date", 5)
		for i := 0; i < 5; i++ {
			key.Nums[i] = float64(i)
			name.Strs[i] = regions[i]
			date.Nums[i] = gaussDate()
		}
		db.Tables["region"] = newTable("region", key, name, date)
	}

	// nation
	{
		key := numCol("n_nationkey", 25)
		name := strCol("n_name", 25)
		rkey := numCol("n_regionkey", 25)
		date := numCol("n_date", 25)
		for i := 0; i < 25; i++ {
			key.Nums[i] = float64(i)
			name.Strs[i] = nations[i]
			rkey.Nums[i] = float64(i % 5)
			date.Nums[i] = gaussDate()
		}
		db.Tables["nation"] = newTable("nation", key, name, rkey, date)
	}

	// supplier
	{
		key := numCol("s_suppkey", nSupp)
		nkey := numCol("s_nationkey", nSupp)
		bal := numCol("s_acctbal", nSupp)
		date := numCol("s_date", nSupp)
		for i := 0; i < nSupp; i++ {
			key.Nums[i] = float64(i + 1)
			nkey.Nums[i] = float64(rng.Intn(25))
			bal.Nums[i] = -999.99 + rng.Float64()*10998.98
			date.Nums[i] = gaussDate()
		}
		db.Tables["supplier"] = newTable("supplier", key, nkey, bal, date)
	}

	// part
	{
		key := numCol("p_partkey", nPart)
		size := numCol("p_size", nPart)
		price := numCol("p_retailprice", nPart)
		brand := strCol("p_brand", nPart)
		ptype := strCol("p_type", nPart)
		date := numCol("p_date", nPart)
		for i := 0; i < nPart; i++ {
			key.Nums[i] = float64(i + 1)
			size.Nums[i] = float64(1 + rng.Intn(50))
			price.Nums[i] = 900 + float64(i+1)/10 + float64(rng.Intn(1000))/10
			brand.Strs[i] = brands[rng.Intn(len(brands))]
			ptype.Strs[i] = types[rng.Intn(len(types))]
			date.Nums[i] = gaussDate()
		}
		db.Tables["part"] = newTable("part", key, size, price, brand, ptype, date)
	}

	// partsupp: each part has nPartSupp/nPart suppliers.
	{
		pkey := numCol("ps_partkey", nPartSupp)
		skey := numCol("ps_suppkey", nPartSupp)
		qty := numCol("ps_availqty", nPartSupp)
		cost := numCol("ps_supplycost", nPartSupp)
		date := numCol("ps_date", nPartSupp)
		perPart := max(nPartSupp/nPart, 1)
		for i := 0; i < nPartSupp; i++ {
			pkey.Nums[i] = float64(i/perPart%nPart + 1)
			skey.Nums[i] = float64(rng.Intn(nSupp) + 1)
			qty.Nums[i] = float64(1 + rng.Intn(9999))
			cost.Nums[i] = 1 + rng.Float64()*999
			date.Nums[i] = gaussDate()
		}
		db.Tables["partsupp"] = newTable("partsupp", pkey, skey, qty, cost, date)
	}

	// customer
	{
		key := numCol("c_custkey", nCust)
		nkey := numCol("c_nationkey", nCust)
		bal := numCol("c_acctbal", nCust)
		seg := strCol("c_mktsegment", nCust)
		date := numCol("c_date", nCust)
		for i := 0; i < nCust; i++ {
			key.Nums[i] = float64(i + 1)
			nkey.Nums[i] = float64(rng.Intn(25))
			bal.Nums[i] = -999.99 + rng.Float64()*10998.98
			seg.Strs[i] = segments[rng.Intn(len(segments))]
			date.Nums[i] = gaussDate()
		}
		db.Tables["customer"] = newTable("customer", key, nkey, bal, seg, date)
	}

	// orders
	{
		key := numCol("o_orderkey", nOrders)
		ckey := numCol("o_custkey", nOrders)
		price := numCol("o_totalprice", nOrders)
		odate := numCol("o_orderdate", nOrders)
		prio := strCol("o_orderpriority", nOrders)
		date := numCol("o_date", nOrders)
		for i := 0; i < nOrders; i++ {
			key.Nums[i] = float64(i + 1)
			ckey.Nums[i] = float64(rng.Intn(nCust) + 1)
			price.Nums[i] = 800 + rng.Float64()*500000*rng.Float64()
			odate.Nums[i] = uniformDate()
			prio.Strs[i] = priorities[rng.Intn(len(priorities))]
			date.Nums[i] = gaussDate()
		}
		db.Tables["orders"] = newTable("orders", key, ckey, price, odate, prio, date)
	}

	// lineitem: lines per order approximately uniform 1..7 (avg 4, as in TPC-H).
	{
		okey := numCol("l_orderkey", 0)
		pkey := numCol("l_partkey", 0)
		skey := numCol("l_suppkey", 0)
		lnum := numCol("l_linenumber", 0)
		qty := numCol("l_quantity", 0)
		price := numCol("l_extendedprice", 0)
		disc := numCol("l_discount", 0)
		sdate := numCol("l_shipdate", 0)
		date := numCol("l_date", 0)
		orderDates := db.Tables["orders"].MustColumn("o_orderdate").Nums
		produced := 0
		for o := 0; o < nOrders && produced < nLine; o++ {
			lines := 1 + rng.Intn(7)
			for l := 0; l < lines && produced < nLine; l++ {
				okey.Nums = append(okey.Nums, float64(o+1))
				pkey.Nums = append(pkey.Nums, float64(rng.Intn(nPart)+1))
				skey.Nums = append(skey.Nums, float64(rng.Intn(nSupp)+1))
				lnum.Nums = append(lnum.Nums, float64(l+1))
				qty.Nums = append(qty.Nums, float64(1+rng.Intn(50)))
				price.Nums = append(price.Nums, 900+rng.Float64()*100000)
				disc.Nums = append(disc.Nums, float64(rng.Intn(11))/100)
				ship := orderDates[o] + 1 + rng.Float64()*121
				if ship > DateMax {
					ship = DateMax
				}
				sdate.Nums = append(sdate.Nums, ship)
				date.Nums = append(date.Nums, gaussDate())
				produced++
			}
		}
		db.Tables["lineitem"] = newTable("lineitem",
			okey, pkey, skey, lnum, qty, price, disc, sdate, date)
	}

	if !cfg.SkipIndexes {
		if err := buildStandardIndexes(db); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// MustGenerate is like Generate but panics on error.
func MustGenerate(cfg Config) *Database {
	db, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// StandardIndexColumns lists the indexed columns per table: primary keys,
// foreign keys, and the artificially added date columns, matching the
// paper's Appendix A setup (plus l_shipdate and o_orderdate, which TPC-H
// workloads conventionally index).
var StandardIndexColumns = map[string][]string{
	"region":   {"r_regionkey", "r_date"},
	"nation":   {"n_nationkey", "n_regionkey", "n_date"},
	"supplier": {"s_suppkey", "s_nationkey", "s_date"},
	"part":     {"p_partkey", "p_date"},
	"partsupp": {"ps_partkey", "ps_suppkey", "ps_date"},
	"customer": {"c_custkey", "c_nationkey", "c_date"},
	"orders":   {"o_orderkey", "o_custkey", "o_orderdate", "o_date"},
	"lineitem": {"l_orderkey", "l_partkey", "l_suppkey", "l_shipdate", "l_date"},
}

func buildStandardIndexes(db *Database) error {
	for table, cols := range StandardIndexColumns {
		t := db.Table(table)
		if t == nil {
			return fmt.Errorf("tpch: missing table %s", table)
		}
		for _, col := range cols {
			if err := t.BuildIndex(col); err != nil {
				return err
			}
		}
	}
	return nil
}

func numCol(name string, n int) *Column {
	return &Column{Name: name, Kind: KindNumeric, Nums: make([]float64, n)}
}

func strCol(name string, n int) *Column {
	return &Column{Name: name, Kind: KindString, Strs: make([]string, n)}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
