// Package tpch implements the modified TPC-H database substrate of the
// paper's experimental setup (Appendix A): the eight TPC-H tables with
// TPC-H's relative cardinalities, an extra Gaussian-distributed date column
// added to every table, and B-tree-style ordered indexes over primary keys,
// foreign keys and the added date columns.
//
// The paper used a commercial DBMS loaded at scale factor 1. This package
// generates an equivalent in-memory database deterministically from a seed,
// at a configurable scale, preserving the relative table sizes (lineitem ≈
// 4× orders ≈ 40× customer, …) that drive the optimizer's plan choices.
//
// Storage is column-major: each column holds either a []float64 (numeric
// and date values, dates as fractional days since the epoch below) or a
// []string. This is a simulator-grade storage engine — no durability, no
// concurrency control — because the paper exercises only the optimizer and
// read-only execution.
package tpch

import (
	"fmt"
	"sort"
)

// ColKind distinguishes numeric columns (including dates, stored as days)
// from string columns.
type ColKind int

const (
	KindNumeric ColKind = iota
	KindString
)

// Column is a named, typed column with column-major storage. Exactly one of
// Nums or Strs is populated, matching Kind.
type Column struct {
	Name string
	Kind ColKind
	Nums []float64
	Strs []string
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	if c.Kind == KindNumeric {
		return len(c.Nums)
	}
	return len(c.Strs)
}

// Index is an ordered index over a numeric column: row identifiers sorted
// by key value, supporting logarithmic range lookups like a B-tree.
type Index struct {
	Column string
	Keys   []float64 // sorted key values
	Rows   []int32   // row ids, parallel to Keys
}

// RangeRows returns the row ids with key in [lo, hi], in key order.
// The returned slice aliases the index; callers must not modify it.
func (ix *Index) RangeRows(lo, hi float64) []int32 {
	l := sort.SearchFloat64s(ix.Keys, lo)
	r := sort.Search(len(ix.Keys), func(i int) bool { return ix.Keys[i] > hi })
	if r < l {
		return nil
	}
	return ix.Rows[l:r]
}

// Table is an in-memory relation.
type Table struct {
	Name    string
	Columns []*Column
	Indexes map[string]*Index // keyed by column name

	byName map[string]*Column
}

// NumRows returns the table's cardinality.
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column {
	return t.byName[name]
}

// MustColumn returns the named column or panics.
func (t *Table) MustColumn(name string) *Column {
	c := t.byName[name]
	if c == nil {
		panic(fmt.Sprintf("tpch: table %s has no column %s", t.Name, name))
	}
	return c
}

// HasIndex reports whether an ordered index exists on the named column.
func (t *Table) HasIndex(col string) bool {
	_, ok := t.Indexes[col]
	return ok
}

// BuildIndex creates (or rebuilds) an ordered index on a numeric column.
func (t *Table) BuildIndex(col string) error {
	c := t.Column(col)
	if c == nil {
		return fmt.Errorf("tpch: table %s has no column %s", t.Name, col)
	}
	if c.Kind != KindNumeric {
		return fmt.Errorf("tpch: cannot index string column %s.%s", t.Name, col)
	}
	n := c.Len()
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	sort.Slice(rows, func(a, b int) bool { return c.Nums[rows[a]] < c.Nums[rows[b]] })
	keys := make([]float64, n)
	for i, r := range rows {
		keys[i] = c.Nums[r]
	}
	t.Indexes[col] = &Index{Column: col, Keys: keys, Rows: rows}
	return nil
}

func newTable(name string, cols ...*Column) *Table {
	t := &Table{
		Name:    name,
		Columns: cols,
		Indexes: make(map[string]*Index),
		byName:  make(map[string]*Column, len(cols)),
	}
	for _, c := range cols {
		t.byName[c.Name] = c
	}
	return t
}

// Database is the full generated TPC-H-style database.
type Database struct {
	Tables map[string]*Table
	// Scale records the divisor applied to TPC-H SF1 cardinalities.
	Scale int
	// Seed records the generator seed, for reproducibility.
	Seed int64
}

// Table returns the named table, or nil if absent.
func (db *Database) Table(name string) *Table { return db.Tables[name] }

// MustTable returns the named table or panics.
func (db *Database) MustTable(name string) *Table {
	t := db.Tables[name]
	if t == nil {
		panic(fmt.Sprintf("tpch: no table %s", name))
	}
	return t
}

// TableNames returns the table names in a stable order.
func (db *Database) TableNames() []string {
	names := make([]string, 0, len(db.Tables))
	for n := range db.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
