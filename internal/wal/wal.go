// Package wal is the durability layer of the PPC runtime: an append-only,
// segment-rotated write-ahead log of epoch-stamped feedback records. The
// per-template feedback appliers log every labeled plan space point before
// it enters the histogram synopsis, so a crash loses no acknowledged
// training signal — recovery loads the latest checkpoint and replays only
// the WAL tail (records newer than what the checkpoint's learners had
// applied).
//
// Design constraints, in order:
//
//   - The hot predict path never touches disk. Appends happen under the
//     learner write lock (core.Online.mu), which the lock-free serving path
//     does not take; in steady state only the per-template background
//     applier goroutines reach Append.
//   - A torn tail (crash mid-record) is expected, not exceptional: Scan
//     stops at the first invalid frame of the final segment and reports how
//     many bytes it ignored; Open truncates the tear so the log is clean
//     for the next writer.
//   - Append-path failures degrade durability, never availability: the
//     caller counts the error and keeps applying in memory.
//
// On-disk layout: dir/wal-<firstseq>.log segments, each opened by a magic
// string and a version, followed by length-prefixed, CRC-32C-framed records
// (the same Castagnoli framing convention as the snapshot envelopes in
// persist.go):
//
//	segment: "PPCWAL\x00" u16 version | record*
//	record:  u32 payloadLen | u32 crc32c(payload) | payload
//	payload (kind 1, feedback):
//	         u8 kind | u64 seq | i64 epoch | u16 len(template) template |
//	         i64 plan | f64 cost | u8 selfLabeled | u16 dims | f64*dims
//	payload (kind 2, correction):
//	         u8 kind | u64 seq | u64 corrEpoch | u16 len(template) template |
//	         u32 site | f64 logc | u64 n | f64 ref
//	payload (kind 3, retune):
//	         u8 kind | u64 seq | u64 retuneEpoch | u16 len(template) template |
//	         u16 t | u16 s | u16 k | f64*(t*s*k) warp knots
//
// Sequence numbers are global, monotonically increasing, and never reused;
// segment file names carry the first sequence number the segment may
// contain, so compaction can drop a fully checkpointed segment without
// reading it.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
)

const (
	// segMagic opens every segment file.
	segMagic = "PPCWAL\x00"
	// segVersion is the current segment format version.
	segVersion = 1
	// headerSize is the segment header length in bytes.
	headerSize = len(segMagic) + 2
	// frameOverhead is the per-record framing cost (length + checksum).
	frameOverhead = 8
	// maxPayload bounds a declared record length so a corrupted length
	// field cannot drive a huge allocation during scan.
	maxPayload = 1 << 20
	// minPayload is the smallest well-formed feedback payload: kind, seq,
	// epoch, empty template, plan, cost, selfLabeled flag, zero dims.
	minPayload = 1 + 8 + 8 + 2 + 8 + 8 + 1 + 2
	// corrPayloadFixed is a correction payload's size net of the template
	// name: kind, seq, corrEpoch, name length, site, logc, n, ref.
	corrPayloadFixed = 1 + 8 + 8 + 2 + 4 + 8 + 8 + 8
	// retunePayloadFixed is a retune payload's size net of the template name
	// and knots: kind, seq, retuneEpoch, name length, t, s, k.
	retunePayloadFixed = 1 + 8 + 8 + 2 + 2 + 2 + 2

	// DefaultSegmentBytes rotates segments at 4 MiB.
	DefaultSegmentBytes = 4 << 20
	// DefaultSyncInterval is the fsync cadence under SyncInterval.
	DefaultSyncInterval = 100 * time.Millisecond
)

// walCRC is the Castagnoli polynomial table (the same family as the
// snapshot envelopes in persist.go and internal/core).
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// Record kinds. The kind byte is first in every payload so the framing is
// shared; unknown kinds stop a scan (they cannot be skipped trustably).
const (
	// RecordFeedback is one labeled plan space point for a learner.
	RecordFeedback uint8 = 1
	// RecordCorrection is one adaptive-statistics correction site update:
	// the absolute post-update EWMA state, so replay is idempotent.
	RecordCorrection uint8 = 2
	// RecordRetune is one tunable-LSH re-tune event: the absolute warp knot
	// vectors the learner switched to, so replay (and replicas) rebuild the
	// identical mapping without re-deriving it from harvested counts.
	RecordRetune uint8 = 3
)

// Record is one durable log record. Kind selects which fields are live; a
// zero Kind encodes as RecordFeedback, so pre-correction callers that never
// set it are unchanged. Seq is assigned by Append.
//
// Feedback fields: Epoch is the learner's drift-reset epoch at the point's
// creation, which makes replay reproduce reset semantics (a stale point is
// dropped, a point from a newer epoch implies the resets between).
//
// Correction fields: CorrEpoch is the template's correction epoch after the
// update; Site/LogC/N/Ref are the site's absolute post-update state.
type Record struct {
	Kind        uint8
	Seq         uint64
	Epoch       int64
	Template    string
	Plan        int64
	Cost        float64
	SelfLabeled bool
	Point       []float64

	CorrEpoch uint64
	Site      uint32
	LogC      float64
	N         uint64
	Ref       float64

	// Retune fields: RetuneEpoch is the learner's re-tune epoch after the
	// switch; WarpT×WarpS warps of WarpK knots each, flattened row-major
	// into Warps (transform-major, then axis, then knot).
	RetuneEpoch uint64
	WarpT       uint16
	WarpS       uint16
	WarpK       uint16
	Warps       []float64
}

// SyncPolicy selects when Commit calls fsync. The zero value is SyncAlways:
// a durability layer should be durable unless the operator opts out.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every Commit (one Commit per apply batch, so
	// group commit already amortizes the cost across the batch).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on the first Commit after SyncInterval has
	// elapsed since the previous sync.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache (Close still syncs).
	SyncNever
)

// String names the policy (flag parsing in cmd/ppcserve round-trips it).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("wal.SyncPolicy(%d)", int(p))
}

// ParsePolicy is the inverse of String.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

// Observer receives the log's operational events; the facade implements it
// with the obsv registry's atomic counters. A nil observer is inert.
type Observer interface {
	// WALAppend records one appended record and its framed size in bytes.
	WALAppend(bytes int)
	// WALAppendError records a failed append (the record is not durable).
	WALAppendError()
	// WALSync records one fsync and its latency.
	WALSync(d time.Duration)
	// WALSyncError records a failed fsync.
	WALSyncError()
	// WALRotate records a segment rotation.
	WALRotate()
	// WALCompact records n segments deleted by compaction.
	WALCompact(n int)
	// WALTearDropped records a record silently lost after an injected torn
	// tail (the log simulates a dead process and stops persisting).
	WALTearDropped()
}

// Options configures a Log.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the fsync cadence under SyncInterval (default 100ms).
	SyncInterval time.Duration
	// SegmentBytes rotates segments past this size (default 4 MiB).
	SegmentBytes int64
	// Faults optionally injects disk faults (short write, fsync error,
	// torn tail). nil disables injection.
	Faults *faults.Injector
	// Observer receives operational events (nil disables).
	Observer Observer
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Recovery reports what Open (or Scan) found on disk.
type Recovery struct {
	// Records holds every valid record in sequence order.
	Records []Record
	// Segments counts the segment files scanned.
	Segments int
	// LastSeq is the highest valid sequence number found (0 when empty).
	LastSeq uint64
	// TornBytes counts bytes ignored after the last valid record of the
	// final segment — the expected artifact of a crash mid-append.
	TornBytes int64
	// TornSegment names the file whose tail was torn ("" when clean).
	TornSegment string
	// Corrupt is true when damage beyond a torn tail was found (an invalid
	// record in a non-final segment, an unreadable header). Scanning stops
	// at the damage; later segments are quarantined by Open.
	Corrupt bool
	// Reason explains the corruption, empty when Corrupt is false.
	Reason string
	// QuarantinedSegments lists segments renamed aside because they follow
	// mid-log damage and their records can no longer be ordered trustably.
	QuarantinedSegments []string
}

// Log is the append side of the write-ahead log. Safe for concurrent use;
// appends from the per-template appliers serialize on an internal mutex
// (they are already off the serving path, so the lock is uncontended in
// the latency-critical sense).
type Log struct {
	opts Options

	mu       sync.Mutex
	f        *os.File
	size     int64  // committed size of the current segment
	seq      uint64 // last assigned sequence number
	segFirst uint64 // first seq of the current segment (its name)
	lastSync time.Time
	dead     bool // an injected torn tail "crashed" the log: drop appends
	closed   bool

	scratch []byte // reusable frame encode buffer
}

// Open scans dir, truncates a torn tail so the log ends on a record
// boundary, quarantines segments stranded behind mid-log damage, and
// returns the log positioned to append after the last valid record. The
// returned Recovery carries the valid records for replay.
func Open(opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec, tornPath, tornOff, err := scanDir(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	// Physically truncate the torn tail: the next reader must see a log
	// that ends on a record boundary, or it would stop at our garbage. A
	// tear inside the segment header (crash during rotation) leaves nothing
	// recoverable in the file, so remove it rather than strand an empty
	// shell a future scan would misread as mid-log damage.
	if tornPath != "" {
		if tornOff < int64(headerSize) {
			if err := os.Remove(tornPath); err != nil {
				return nil, nil, fmt.Errorf("wal: remove torn segment %s: %w", tornPath, err)
			}
		} else if err := os.Truncate(tornPath, tornOff); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", tornPath, err)
		}
	}
	// Segments after mid-log damage are unreachable by a trustworthy scan;
	// move them aside so they cannot shadow future appends.
	if rec.Corrupt {
		for _, name := range rec.QuarantinedSegments {
			src := filepath.Join(opts.Dir, name)
			// A rename failure leaves the segment in place; appends below
			// use sequence numbers past everything scanned, so the stale
			// file can only resurface as reported corruption, never as
			// silently replayed data.
			os.Rename(src, src+".corrupt") //nolint:errcheck
		}
	}
	l := &Log{opts: opts, seq: rec.LastSeq, lastSync: time.Now()}
	if err := l.rotateLocked(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// Scan reads the valid records under dir without opening a writer (used by
// tests and recovery audits). It never modifies the directory.
func Scan(dir string) (*Recovery, error) {
	rec, _, _, err := scanDir(dir)
	return rec, err
}

// segments lists the segment files under dir in sequence order.
func segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool { return segFirstSeq(names[i]) < segFirstSeq(names[j]) })
	return names, nil
}

// segFirstSeq parses the first sequence number out of a segment file name;
// malformed names sort first and scan as corrupt.
func segFirstSeq(name string) uint64 {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// segName formats a segment file name from its first sequence number.
func segName(first uint64) string {
	return fmt.Sprintf("wal-%020d.log", first)
}

// scanDir walks the segments in order and collects valid records. It
// returns the recovery report plus, when the final segment has a torn
// tail, the path and offset Open should truncate at.
func scanDir(dir string) (*Recovery, string, int64, error) {
	names, err := segments(dir)
	if err != nil {
		return nil, "", 0, err
	}
	rec := &Recovery{Segments: len(names)}
	tornPath, tornOff := "", int64(0)
	for i, name := range names {
		path := filepath.Join(dir, name)
		last := i == len(names)-1
		badReason, badOff, size := scanSegment(path, &rec.Records)
		if badReason == "" {
			continue
		}
		if last {
			// Damage at the tail of the final segment: the expected crash
			// artifact. Everything before the first bad frame is good.
			rec.TornBytes = size - badOff
			rec.TornSegment = name
			tornPath, tornOff = path, badOff
		} else {
			// Damage followed by more segments: the stream is no longer
			// trustworthy past this point. Stop and quarantine the rest.
			rec.Corrupt = true
			rec.Reason = fmt.Sprintf("segment %s: %s", name, badReason)
			rec.QuarantinedSegments = append(rec.QuarantinedSegments, names[i+1:]...)
			break
		}
	}
	if n := len(rec.Records); n > 0 {
		rec.LastSeq = rec.Records[n-1].Seq
	}
	return rec, tornPath, tornOff, nil
}

// scanSegment appends the segment's valid records to out. It returns a
// non-empty reason and the offset of the first invalid frame when the
// segment does not end cleanly; I/O errors opening or reading the file are
// reported as badReason too (the caller treats them as damage, not as a
// hard failure — a half-unlinked segment must degrade, not crash, the
// recovery).
func scanSegment(path string, out *[]Record) (badReason string, badOff int64, size int64) {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Sprintf("open: %v", err), 0, 0
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return fmt.Sprintf("read: %v", err), 0, 0
	}
	size = int64(len(data))
	if len(data) < headerSize || string(data[:len(segMagic)]) != segMagic {
		return "bad segment header", 0, size
	}
	if v := binary.LittleEndian.Uint16(data[len(segMagic):headerSize]); v != segVersion {
		return fmt.Sprintf("unsupported segment version %d", v), 0, size
	}
	off := int64(headerSize)
	buf := data[headerSize:]
	for len(buf) > 0 {
		rec, frameLen, reason := decodeFrame(buf)
		if reason != "" {
			return reason, off, size
		}
		*out = append(*out, rec)
		off += int64(frameLen)
		buf = buf[frameLen:]
	}
	return "", 0, size
}

// decodeFrame decodes one framed record from the head of buf, returning
// the consumed frame length. A non-empty reason means the frame is invalid
// (truncated, implausible length, checksum mismatch, malformed payload) —
// scanning stops there.
func decodeFrame(buf []byte) (Record, int, string) {
	if len(buf) < frameOverhead {
		return Record{}, 0, fmt.Sprintf("truncated frame header (%d bytes)", len(buf))
	}
	payLen := binary.LittleEndian.Uint32(buf[0:4])
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if payLen < minPayload || payLen > maxPayload {
		return Record{}, 0, fmt.Sprintf("implausible record length %d", payLen)
	}
	if len(buf) < frameOverhead+int(payLen) {
		return Record{}, 0, fmt.Sprintf("truncated record (%d of %d payload bytes)", len(buf)-frameOverhead, payLen)
	}
	payload := buf[frameOverhead : frameOverhead+int(payLen)]
	if got := crc32.Checksum(payload, walCRC); got != sum {
		return Record{}, 0, fmt.Sprintf("record checksum mismatch: got %08x want %08x", got, sum)
	}
	rec, reason := decodePayload(payload)
	if reason != "" {
		return Record{}, 0, reason
	}
	return rec, frameOverhead + int(payLen), ""
}

// decodePayload decodes the checksummed record body.
func decodePayload(p []byte) (Record, string) {
	le := binary.LittleEndian
	switch p[0] {
	case RecordFeedback:
	case RecordCorrection:
		return decodeCorrection(p)
	case RecordRetune:
		return decodeRetune(p)
	default:
		return Record{}, fmt.Sprintf("unknown record kind %d", p[0])
	}
	off := 1
	rec := Record{Kind: RecordFeedback}
	rec.Seq = le.Uint64(p[off:])
	off += 8
	rec.Epoch = int64(le.Uint64(p[off:]))
	off += 8
	tl := int(le.Uint16(p[off:]))
	off += 2
	// Fixed tail after the template name: plan, cost, flag, dim count.
	if off+tl+8+8+1+2 > len(p) {
		return Record{}, "record payload shorter than its template name"
	}
	rec.Template = string(p[off : off+tl])
	off += tl
	rec.Plan = int64(le.Uint64(p[off:]))
	off += 8
	rec.Cost = math.Float64frombits(le.Uint64(p[off:]))
	off += 8
	rec.SelfLabeled = p[off] != 0
	off++
	dims := int(le.Uint16(p[off:]))
	off += 2
	if off+8*dims != len(p) {
		return Record{}, fmt.Sprintf("record dims %d disagree with payload length", dims)
	}
	rec.Point = make([]float64, dims)
	for i := 0; i < dims; i++ {
		rec.Point[i] = math.Float64frombits(le.Uint64(p[off:]))
		off += 8
	}
	return rec, ""
}

// decodeCorrection decodes a kind-2 correction payload.
func decodeCorrection(p []byte) (Record, string) {
	le := binary.LittleEndian
	rec := Record{Kind: RecordCorrection}
	if len(p) < corrPayloadFixed {
		return Record{}, "correction record too short"
	}
	off := 1
	rec.Seq = le.Uint64(p[off:])
	off += 8
	rec.CorrEpoch = le.Uint64(p[off:])
	off += 8
	tl := int(le.Uint16(p[off:]))
	off += 2
	if off+tl+4+8+8+8 != len(p) {
		return Record{}, "correction record payload length disagrees with its template name"
	}
	rec.Template = string(p[off : off+tl])
	off += tl
	rec.Site = le.Uint32(p[off:])
	off += 4
	rec.LogC = math.Float64frombits(le.Uint64(p[off:]))
	off += 8
	rec.N = le.Uint64(p[off:])
	off += 8
	rec.Ref = math.Float64frombits(le.Uint64(p[off:]))
	return rec, ""
}

// decodeRetune decodes a kind-3 retune payload.
func decodeRetune(p []byte) (Record, string) {
	le := binary.LittleEndian
	rec := Record{Kind: RecordRetune}
	if len(p) < retunePayloadFixed {
		return Record{}, "retune record too short"
	}
	off := 1
	rec.Seq = le.Uint64(p[off:])
	off += 8
	rec.RetuneEpoch = le.Uint64(p[off:])
	off += 8
	tl := int(le.Uint16(p[off:]))
	off += 2
	if off+tl+6 > len(p) {
		return Record{}, "retune record payload shorter than its template name"
	}
	rec.Template = string(p[off : off+tl])
	off += tl
	rec.WarpT = le.Uint16(p[off:])
	off += 2
	rec.WarpS = le.Uint16(p[off:])
	off += 2
	rec.WarpK = le.Uint16(p[off:])
	off += 2
	n := int(rec.WarpT) * int(rec.WarpS) * int(rec.WarpK)
	if off+8*n != len(p) {
		return Record{}, fmt.Sprintf("retune record knot count %d disagrees with payload length", n)
	}
	rec.Warps = make([]float64, n)
	for i := 0; i < n; i++ {
		rec.Warps[i] = math.Float64frombits(le.Uint64(p[off:]))
		off += 8
	}
	return rec, ""
}

// encodeFrame encodes rec's framed bytes into buf (reusing its capacity)
// and returns the frame.
func encodeFrame(buf []byte, rec *Record) []byte {
	if rec.Kind == RecordCorrection {
		return encodeCorrectionFrame(buf, rec)
	}
	if rec.Kind == RecordRetune {
		return encodeRetuneFrame(buf, rec)
	}
	le := binary.LittleEndian
	payLen := minPayload + len(rec.Template) + 8*len(rec.Point)
	need := frameOverhead + payLen
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	frame := buf[:need]
	le.PutUint32(frame[0:4], uint32(payLen))
	p := frame[frameOverhead:]
	p[0] = RecordFeedback
	off := 1
	le.PutUint64(p[off:], rec.Seq)
	off += 8
	le.PutUint64(p[off:], uint64(rec.Epoch))
	off += 8
	le.PutUint16(p[off:], uint16(len(rec.Template)))
	off += 2
	copy(p[off:], rec.Template)
	off += len(rec.Template)
	le.PutUint64(p[off:], uint64(rec.Plan))
	off += 8
	le.PutUint64(p[off:], math.Float64bits(rec.Cost))
	off += 8
	if rec.SelfLabeled {
		p[off] = 1
	} else {
		p[off] = 0
	}
	off++
	le.PutUint16(p[off:], uint16(len(rec.Point)))
	off += 2
	for _, v := range rec.Point {
		le.PutUint64(p[off:], math.Float64bits(v))
		off += 8
	}
	le.PutUint32(frame[4:8], crc32.Checksum(p, walCRC))
	return frame
}

// encodeCorrectionFrame encodes a kind-2 correction record.
func encodeCorrectionFrame(buf []byte, rec *Record) []byte {
	le := binary.LittleEndian
	payLen := corrPayloadFixed + len(rec.Template)
	need := frameOverhead + payLen
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	frame := buf[:need]
	le.PutUint32(frame[0:4], uint32(payLen))
	p := frame[frameOverhead:]
	p[0] = RecordCorrection
	off := 1
	le.PutUint64(p[off:], rec.Seq)
	off += 8
	le.PutUint64(p[off:], rec.CorrEpoch)
	off += 8
	le.PutUint16(p[off:], uint16(len(rec.Template)))
	off += 2
	copy(p[off:], rec.Template)
	off += len(rec.Template)
	le.PutUint32(p[off:], rec.Site)
	off += 4
	le.PutUint64(p[off:], math.Float64bits(rec.LogC))
	off += 8
	le.PutUint64(p[off:], rec.N)
	off += 8
	le.PutUint64(p[off:], math.Float64bits(rec.Ref))
	le.PutUint32(frame[4:8], crc32.Checksum(p, walCRC))
	return frame
}

// encodeRetuneFrame encodes a kind-3 retune record. Real retune payloads
// (at least one warp of WarpBins+1 knots) always clear minPayload.
func encodeRetuneFrame(buf []byte, rec *Record) []byte {
	le := binary.LittleEndian
	payLen := retunePayloadFixed + len(rec.Template) + 8*len(rec.Warps)
	need := frameOverhead + payLen
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	frame := buf[:need]
	le.PutUint32(frame[0:4], uint32(payLen))
	p := frame[frameOverhead:]
	p[0] = RecordRetune
	off := 1
	le.PutUint64(p[off:], rec.Seq)
	off += 8
	le.PutUint64(p[off:], rec.RetuneEpoch)
	off += 8
	le.PutUint16(p[off:], uint16(len(rec.Template)))
	off += 2
	copy(p[off:], rec.Template)
	off += len(rec.Template)
	le.PutUint16(p[off:], rec.WarpT)
	off += 2
	le.PutUint16(p[off:], rec.WarpS)
	off += 2
	le.PutUint16(p[off:], rec.WarpK)
	off += 2
	for _, v := range rec.Warps {
		le.PutUint64(p[off:], math.Float64bits(v))
		off += 8
	}
	le.PutUint32(frame[4:8], crc32.Checksum(p, walCRC))
	return frame
}

// Append assigns rec the next sequence number and writes its frame to the
// current segment, rotating first if the segment is full. The write lands
// in the OS page cache; durability is Commit's job. On failure the segment
// is truncated back to the last good record boundary so the log stays
// well-formed, and the error is returned for the caller to count — the
// in-memory learner keeps going either way.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: append on closed log")
	}
	if l.dead {
		// An injected torn tail "crashed" this log: from the disk's point
		// of view the process died mid-record, so nothing after the tear
		// may land. The in-memory system keeps serving.
		l.observer().WALTearDropped()
		return 0, nil
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.observer().WALAppendError()
			return 0, err
		}
	}
	rec.Seq = l.seq + 1
	l.scratch = encodeFrame(l.scratch, rec)
	frame := l.scratch

	if l.opts.Faults.Should(faults.WALTornTail) && len(frame) > 1 {
		// Simulated power loss mid-append: a prefix of the frame reaches
		// the disk, the rest — and every later append — does not. Replay
		// must truncate the tear and recover everything before it.
		cut := 1 + l.opts.Faults.Intn(len(frame)-1)
		l.f.Write(frame[:cut]) //nolint:errcheck
		l.dead = true
		l.observer().WALTearDropped()
		return 0, nil
	}
	if l.opts.Faults.Should(faults.WALShortWrite) {
		// Simulated short write: half the frame lands, the write errors.
		// Repair by truncating back to the last record boundary so the
		// segment stays scannable; the record is reported lost.
		l.f.Write(frame[:len(frame)/2]) //nolint:errcheck
		if err := l.repairLocked(); err != nil {
			return 0, err
		}
		l.observer().WALAppendError()
		return 0, fmt.Errorf("wal: short write: %w", faults.ErrInjected)
	}

	n, err := l.f.Write(frame)
	if err != nil || n != len(frame) {
		if rerr := l.repairLocked(); rerr != nil {
			return 0, rerr
		}
		l.observer().WALAppendError()
		if err == nil {
			err = io.ErrShortWrite
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.seq = rec.Seq
	l.size += int64(len(frame))
	l.observer().WALAppend(len(frame))
	return rec.Seq, nil
}

// repairLocked truncates the current segment back to the last committed
// record boundary after a failed or partial write.
func (l *Log) repairLocked() error {
	if err := l.f.Truncate(l.size); err != nil {
		l.dead = true
		l.observer().WALAppendError()
		return fmt.Errorf("wal: repair truncate: %w", err)
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.dead = true
		l.observer().WALAppendError()
		return fmt.Errorf("wal: repair seek: %w", err)
	}
	return nil
}

// Commit is the group-commit barrier the applier calls once per apply
// batch: under SyncAlways it fsyncs now, under SyncInterval it fsyncs when
// the interval has elapsed, under SyncNever it is a no-op.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncInterval {
			return l.syncLocked()
		}
	}
	return nil
}

// Sync fsyncs unconditionally (shutdown flushes and explicit barriers).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || l.dead || l.f == nil {
		return nil
	}
	if err := l.opts.Faults.Fail(faults.WALFsyncError); err != nil {
		l.observer().WALSyncError()
		return fmt.Errorf("wal: fsync: %w", err)
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		l.observer().WALSyncError()
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.lastSync = time.Now()
	l.observer().WALSync(time.Since(t0))
	return nil
}

// rotateLocked closes the current segment and opens a fresh one named by
// the next sequence number.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		l.f.Sync()  //nolint:errcheck
		l.f.Close() //nolint:errcheck
		l.observer().WALRotate()
	}
	first := l.seq + 1
	path := filepath.Join(l.opts.Dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //nolint:errcheck
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	size := st.Size()
	if size == 0 {
		// Fresh segment: write the header. A non-empty file at this name is
		// the scanned (and repaired) tail segment whose records all predate
		// first — keep appending after them rather than double-writing the
		// header.
		var hdr [headerSize]byte
		copy(hdr[:], segMagic)
		binary.LittleEndian.PutUint16(hdr[len(segMagic):], segVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close() //nolint:errcheck
			return fmt.Errorf("wal: write segment header: %w", err)
		}
		size = int64(headerSize)
	}
	l.f = f
	l.size = size
	l.segFirst = first
	return nil
}

// Compact deletes segments whose every record is covered by a checkpoint —
// those entirely below minSeq. The segment holding minSeq, anything after
// it, and the live segment always survive. Returns how many were removed.
func (l *Log) Compact(minSeq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	names, err := segments(l.opts.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(names); i++ {
		// All records in names[i] have seq < firstSeq(names[i+1]); the
		// segment is obsolete when even its last record is <= minSeq.
		if segFirstSeq(names[i+1]) > minSeq+1 {
			break
		}
		if segFirstSeq(names[i]) == l.segFirst {
			break // never unlink the live segment
		}
		if err := os.Remove(filepath.Join(l.opts.Dir, names[i])); err != nil {
			return removed, fmt.Errorf("wal: compact: %w", err)
		}
		removed++
	}
	if removed > 0 {
		l.observer().WALCompact(removed)
	}
	return removed, nil
}

// LastSeq returns the highest sequence number assigned so far.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dir returns the segment directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Close syncs and closes the current segment. Further appends error.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	var err error
	if !l.dead {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// observer returns the configured observer or an inert one.
func (l *Log) observer() Observer {
	if l.opts.Observer != nil {
		return l.opts.Observer
	}
	return noopObserver{}
}

type noopObserver struct{}

func (noopObserver) WALAppend(int)            {}
func (noopObserver) WALAppendError()          {}
func (noopObserver) WALSync(time.Duration)    {}
func (noopObserver) WALSyncError()            {}
func (noopObserver) WALRotate()               {}
func (noopObserver) WALCompact(int)           {}
func (noopObserver) WALTearDropped()          {}
