package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the record decoder. The
// invariants under fuzz: never panic, never over-read, and on a reported
// success the re-encoded record must byte-match the consumed frame (decode
// and encode are exact inverses).
func FuzzDecodeFrame(f *testing.F) {
	seedRecs := []*Record{
		{Seq: 1, Epoch: 0, Template: "Q1", Plan: 7, Cost: 1.5, Point: []float64{0.1, 0.9}},
		{Seq: 42, Epoch: 3, Template: "", Plan: -1, Cost: 0, SelfLabeled: true, Point: nil},
		{Seq: 1<<63 + 9, Epoch: -5, Template: "a-very-long-template-name", Plan: 1 << 40,
			Cost: -2.25, Point: []float64{0, 0, 0, 0, 0, 0, 0, 0}},
	}
	for _, r := range seedRecs {
		f.Add(encodeFrame(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	// A frame with a valid checksum over a malformed payload.
	bad := make([]byte, frameOverhead+minPayload)
	binary.LittleEndian.PutUint32(bad[0:4], minPayload)
	bad[frameOverhead] = 99 // unknown kind
	binary.LittleEndian.PutUint32(bad[4:8], crc32.Checksum(bad[frameOverhead:], walCRC))
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, reason := decodeFrame(data)
		if reason != "" {
			if n != 0 {
				t.Fatalf("invalid frame consumed %d bytes", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("frame length %d out of range (input %d)", n, len(data))
		}
		round := encodeFrame(nil, &rec)
		if !bytes.Equal(round, data[:n]) {
			t.Fatalf("decode/encode not inverse:\n in  %x\n out %x", data[:n], round)
		}
	})
}

// FuzzScan feeds an arbitrary byte blob as a single segment file and checks
// the directory scanner's contract: no panic, no error (damage degrades to
// a report), and a second scan after Open's repair pass must come back
// clean — recovery always converges to a well-formed log.
func FuzzScan(f *testing.F) {
	mk := func(recs ...*Record) []byte {
		var buf bytes.Buffer
		var hdr [headerSize]byte
		copy(hdr[:], segMagic)
		binary.LittleEndian.PutUint16(hdr[len(segMagic):], segVersion)
		buf.Write(hdr[:])
		for i, r := range recs {
			r.Seq = uint64(i + 1)
			buf.Write(encodeFrame(nil, r))
		}
		return buf.Bytes()
	}
	f.Add(mk())
	f.Add(mk(&Record{Template: "Q0", Point: []float64{0.5}}))
	whole := mk(&Record{Template: "Q1", Point: []float64{0.1, 0.2}},
		&Record{Template: "Q1", Point: []float64{0.3, 0.4}})
	f.Add(whole)
	f.Add(whole[:len(whole)-3]) // torn tail
	f.Add([]byte("not a segment at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Scan(dir)
		if err != nil {
			t.Fatalf("Scan errored on damage instead of reporting it: %v", err)
		}
		nValid := len(rec.Records)

		// Open repairs; the records it reports must match the read-only scan
		// and the repaired directory must scan clean.
		lg, rec2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if len(rec2.Records) != nValid {
			t.Fatalf("Open recovered %d records, Scan saw %d", len(rec2.Records), nValid)
		}
		lg.Close()
		rec3, err := Scan(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rec3.TornBytes != 0 {
			t.Fatalf("repair left %d torn bytes", rec3.TornBytes)
		}
		if len(rec3.Records) != nValid {
			t.Fatalf("post-repair scan lost records: %d vs %d", len(rec3.Records), nValid)
		}
	})
}
