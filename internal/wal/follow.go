package wal

// Tail-follow support for replication: the leader's ship loop polls a
// Follower to pick up feedback records as the per-template appliers write
// them, and forwards the frames to replicas verbatim (the wire batches
// reuse this file's exported frame codec, so a replica decodes exactly the
// bytes a crash recovery would).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrCompacted reports that a follower's position (or a requested resume
// sequence) has been deleted by checkpoint compaction. The only recovery
// is a fresh snapshot: the missing records are covered by a checkpoint the
// follower never saw.
var ErrCompacted = errors.New("wal: position compacted away")

// AppendFrame appends rec's framed encoding (the exact on-disk segment
// frame: u32 len | u32 crc32c | payload) to dst and returns the extended
// slice. rec.Seq is encoded as-is — the caller owns sequence assignment.
func AppendFrame(dst []byte, rec *Record) []byte {
	tail := dst[len(dst):]
	frame := encodeFrame(tail, rec)
	if cap(tail) >= len(frame) {
		// encodeFrame reused dst's spare capacity in place.
		return dst[: len(dst)+len(frame) : len(dst)+cap(tail)]
	}
	return append(dst, frame...)
}

// DecodeFrame decodes one framed record from the head of buf, returning
// the consumed frame length. The error form of the private decodeFrame,
// for callers outside the scan path (wire batch decoding on replicas).
func DecodeFrame(buf []byte) (Record, int, error) {
	rec, n, reason := decodeFrame(buf)
	if reason != "" {
		return Record{}, 0, fmt.Errorf("wal: decode frame: %s", reason)
	}
	return rec, n, nil
}

// FirstSeq returns the lowest sequence number still covered by an on-disk
// segment — the name of the oldest segment file. Records below it have
// been compacted away; a follower asking to resume below FirstSeq needs a
// snapshot instead.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	dir := l.opts.Dir
	live := l.segFirst
	l.mu.Unlock()
	names, err := segments(dir)
	if err != nil || len(names) == 0 {
		return live
	}
	return segFirstSeq(names[0])
}

// Follower tails a WAL directory, delivering records strictly after a
// starting sequence number in order. It reads the segment files directly
// (no coordination with the writing Log beyond the file system), so it
// works both in-process and over a restart. Not safe for concurrent use.
//
// Poll never blocks: it returns whatever complete records are on disk and
// expects the caller to poll again later. A torn frame at the live tail is
// an append in flight and simply ends the batch; the same torn frame with
// a newer segment already present means the history under the follower was
// repaired or compacted, which surfaces as ErrCompacted.
type Follower struct {
	dir      string
	after    uint64 // newest sequence already delivered
	segFirst uint64 // name-seq of the segment being read (0 = unpositioned)
	off      int64  // bytes consumed in the current segment
}

// NewFollower tails dir for records with Seq > afterSeq. afterSeq = 0
// follows from the beginning of history (ErrCompacted if that is gone).
func NewFollower(dir string, afterSeq uint64) *Follower {
	return &Follower{dir: dir, after: afterSeq}
}

// After returns the newest sequence number delivered so far (the resume
// position if the follower is rebuilt).
func (f *Follower) After() uint64 { return f.after }

// Poll returns up to max complete records past the follower's position,
// advancing across sealed segments. An empty batch with a nil error means
// the tail is fully consumed for now. ErrCompacted means the position no
// longer exists on disk and the follower must be replaced by a snapshot.
func (f *Follower) Poll(max int) ([]Record, error) {
	if max <= 0 {
		max = 1 << 10
	}
	var out []Record
	for len(out) < max {
		if f.segFirst == 0 {
			ok, err := f.position()
			if err != nil || !ok {
				return out, err
			}
		}
		name := segName(f.segFirst)
		data, err := os.ReadFile(filepath.Join(f.dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				// The segment under us was compacted away.
				f.segFirst = 0
				return out, ErrCompacted
			}
			return out, fmt.Errorf("wal: follow read %s: %w", name, err)
		}
		if int64(len(data)) < f.off {
			// The file shrank below bytes already consumed: the history we
			// were tailing was rewritten. Resnapshot.
			f.segFirst = 0
			return out, ErrCompacted
		}
		if f.off == 0 {
			if len(data) < headerSize {
				return out, nil // header still being written; retry later
			}
			if string(data[:len(segMagic)]) != segMagic {
				return out, fmt.Errorf("wal: follow: bad segment header in %s", name)
			}
			if v := binary.LittleEndian.Uint16(data[len(segMagic):headerSize]); v != segVersion {
				return out, fmt.Errorf("wal: follow: unsupported segment version %d in %s", v, name)
			}
			f.off = int64(headerSize)
		}
		buf := data[f.off:]
		for len(buf) > 0 && len(out) < max {
			rec, frameLen, reason := decodeFrame(buf)
			if reason != "" {
				// Invalid bytes at the current position. At the live tail
				// this is an append in flight — deliver what we have and let
				// the next poll retry. If the writer has already rotated
				// past this segment the damage is permanent and the records
				// behind it unreachable: force a resnapshot.
				next, nerr := f.nextSegment()
				if nerr != nil {
					return out, nerr
				}
				if next != 0 {
					f.segFirst = 0
					return out, ErrCompacted
				}
				return out, nil
			}
			f.off += int64(frameLen)
			buf = buf[frameLen:]
			if rec.Seq > f.after {
				f.after = rec.Seq
				out = append(out, rec)
			}
		}
		if len(buf) > 0 {
			continue // max reached mid-segment; outer condition ends the loop
		}
		// Clean end of segment: advance only once the writer has rotated,
		// otherwise this is the live tail and we wait for more appends.
		next, err := f.nextSegment()
		if err != nil {
			return out, err
		}
		if next == 0 {
			return out, nil
		}
		f.segFirst, f.off = next, 0
	}
	return out, nil
}

// position picks the segment containing the follower's next sequence: the
// last segment whose name-seq is at or below it. Returns false when the
// directory has no segments yet (keep waiting).
func (f *Follower) position() (bool, error) {
	names, err := segments(f.dir)
	if err != nil {
		return false, err
	}
	if len(names) == 0 {
		return false, nil
	}
	want := f.after + 1
	if segFirstSeq(names[0]) > want {
		return false, ErrCompacted
	}
	pick := names[0]
	for _, n := range names {
		if segFirstSeq(n) <= want {
			pick = n
		}
	}
	f.segFirst, f.off = segFirstSeq(pick), 0
	return true, nil
}

// nextSegment returns the name-seq of the first segment after the current
// one, or 0 when the current segment is still the newest.
func (f *Follower) nextSegment() (uint64, error) {
	names, err := segments(f.dir)
	if err != nil {
		return 0, err
	}
	for _, n := range names {
		if s := segFirstSeq(n); s > f.segFirst {
			return s, nil
		}
	}
	return 0, nil
}
