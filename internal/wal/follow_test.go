package wal

// Tests for the live-tail Follower the replication ship loop runs: catch-up
// over existing segments, rotation handoff, compaction racing the tail
// (ErrCompacted), and in-flight torn tails that must be retried, never
// delivered.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// appendN appends n records for tmpl and returns the last assigned seq.
func appendN(t *testing.T, l *Log, tmpl string, n int) uint64 {
	t.Helper()
	var last uint64
	for i := 0; i < n; i++ {
		seq, err := l.Append(testRecord(tmpl, i))
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	return last
}

// drain polls until the follower reports no more records.
func drain(t *testing.T, f *Follower) []Record {
	t.Helper()
	var out []Record
	for {
		recs, err := f.Poll(100)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, recs...)
		if len(recs) < 100 {
			return out
		}
	}
}

func TestFollowerCatchUpAndTail(t *testing.T) {
	l, _ := openTest(t, Options{Dir: t.TempDir(), SegmentBytes: 256})
	last := appendN(t, l, "Q1", 20) // several segments at 256 bytes

	f := NewFollower(l.Dir(), 0)
	recs := drain(t, f)
	if len(recs) != 20 {
		t.Fatalf("catch-up delivered %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d (dense, ordered)", i, r.Seq, i+1)
		}
	}
	if f.After() != last {
		t.Fatalf("After() = %d, want %d", f.After(), last)
	}

	// Quiet tail: no records, no error.
	if recs := drain(t, f); len(recs) != 0 {
		t.Fatalf("idle poll delivered %d records", len(recs))
	}

	// Live tail: new appends (including across a rotation) arrive in order.
	last2 := appendN(t, l, "Q1", 15)
	recs = drain(t, f)
	if len(recs) != 15 || recs[0].Seq != last+1 || recs[len(recs)-1].Seq != last2 {
		t.Fatalf("live tail delivered %d records [%d..%d], want 15 [%d..%d]",
			len(recs), recs[0].Seq, recs[len(recs)-1].Seq, last+1, last2)
	}
}

func TestFollowerResumeMidStream(t *testing.T) {
	l, _ := openTest(t, Options{Dir: t.TempDir(), SegmentBytes: 256})
	appendN(t, l, "Q1", 30)

	f := NewFollower(l.Dir(), 12)
	recs := drain(t, f)
	if len(recs) != 18 || recs[0].Seq != 13 {
		t.Fatalf("resume after 12 delivered %d records starting at %d", len(recs), recs[0].Seq)
	}
}

func TestFollowerCompactedPosition(t *testing.T) {
	l, _ := openTest(t, Options{Dir: t.TempDir(), SegmentBytes: 256})
	appendN(t, l, "Q1", 30)
	if _, err := l.Compact(25); err != nil {
		t.Fatal(err)
	}

	// A position below the surviving floor is unrecoverable for a tail: the
	// follower must say so, not silently skip records.
	f := NewFollower(l.Dir(), 3)
	if _, err := f.Poll(100); !errors.Is(err, ErrCompacted) {
		t.Fatalf("poll below the compaction floor: %v, want ErrCompacted", err)
	}

	// From the floor itself the tail still works.
	first := l.FirstSeq()
	f2 := NewFollower(l.Dir(), first-1)
	recs := drain(t, f2)
	if len(recs) == 0 || recs[0].Seq != first {
		t.Fatalf("tail from floor %d delivered %d records", first, len(recs))
	}
}

func TestFollowerCompactionMidTail(t *testing.T) {
	l, _ := openTest(t, Options{Dir: t.TempDir(), SegmentBytes: 256})
	appendN(t, l, "Q1", 10)
	f := NewFollower(l.Dir(), 0)
	if recs := drain(t, f); len(recs) != 10 {
		t.Fatalf("catch-up delivered %d records", len(recs))
	}

	// The follower sits parked on an old segment; compaction deletes it out
	// from under the tail. The next poll either reports ErrCompacted or — if
	// the follower was already on the live segment — keeps delivering.
	appendN(t, l, "Q1", 30)
	if _, err := l.Compact(35); err != nil {
		t.Fatal(err)
	}
	recs, err := f.Poll(100)
	if err != nil && !errors.Is(err, ErrCompacted) {
		t.Fatalf("poll after compaction: %v", err)
	}
	if err == nil {
		for _, r := range recs {
			if r.Seq <= 10 {
				t.Fatalf("replayed already-delivered seq %d", r.Seq)
			}
		}
	}
}

// TestFollowerTornTailNotDelivered truncates the live segment mid-frame —
// the on-disk state during an in-flight append or after a crash. The
// follower must hold the partial frame back and deliver it only once the
// bytes are complete.
func TestFollowerTornTailNotDelivered(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, Options{Dir: dir})
	appendN(t, l, "Q1", 5)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	seg := segs[len(segs)-1]
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Copy the live segment into a fresh dir, torn 3 bytes short.
	tornDir := t.TempDir()
	torn := filepath.Join(tornDir, filepath.Base(seg))
	if err := os.WriteFile(torn, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	f := NewFollower(tornDir, 0)
	recs, err := f.Poll(100)
	if err != nil {
		t.Fatalf("poll over a torn live tail: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("torn tail delivered %d records, want 4 complete ones", len(recs))
	}

	// The append "completes": the rest of the bytes land. The held-back
	// record is delivered exactly once.
	if err := os.WriteFile(torn, full, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = f.Poll(100)
	if err != nil || len(recs) != 1 || recs[0].Seq != 5 {
		t.Fatalf("completed tail delivered %v (%v), want seq 5", recs, err)
	}
}

func TestFollowerEmptyDir(t *testing.T) {
	f := NewFollower(t.TempDir(), 0)
	if recs, err := f.Poll(10); err != nil || len(recs) != 0 {
		t.Fatalf("empty dir poll: %v records, %v", len(recs), err)
	}
}

func TestAppendDecodeFrameRoundTrip(t *testing.T) {
	rec := testRecord("Q9", 13)
	rec.Seq = 77
	buf := AppendFrame([]byte("prefix"), rec)
	got, n, err := DecodeFrame(buf[len("prefix"):])
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf)-len("prefix") {
		t.Errorf("frame length %d, consumed %d", len(buf)-len("prefix"), n)
	}
	if got.Seq != rec.Seq || got.Template != rec.Template || got.Plan != rec.Plan ||
		got.Cost != rec.Cost || got.SelfLabeled != rec.SelfLabeled || len(got.Point) != len(rec.Point) {
		t.Errorf("round trip: %+v vs %+v", got, rec)
	}
	// A truncated frame must error, not misparse.
	if _, _, err := DecodeFrame(buf[len("prefix") : len(buf)-2]); err == nil {
		t.Error("truncated frame decoded")
	}
}
