package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// countObserver counts WAL events for assertions (the production observer
// lives in internal/obsv; tests only need the counts).
type countObserver struct {
	appends, appendErrs, syncs, syncErrs, rotates, compacted, tears atomic.Int64
}

func (o *countObserver) WALAppend(int)         { o.appends.Add(1) }
func (o *countObserver) WALAppendError()       { o.appendErrs.Add(1) }
func (o *countObserver) WALSync(time.Duration) { o.syncs.Add(1) }
func (o *countObserver) WALSyncError()         { o.syncErrs.Add(1) }
func (o *countObserver) WALRotate()            { o.rotates.Add(1) }
func (o *countObserver) WALCompact(n int)      { o.compacted.Add(int64(n)) }
func (o *countObserver) WALTearDropped()       { o.tears.Add(1) }

func testRecord(tmpl string, i int) *Record {
	return &Record{
		Epoch:       int64(i % 3),
		Template:    tmpl,
		Plan:        int64(i * 7),
		Cost:        float64(i) * 1.5,
		SelfLabeled: i%2 == 0,
		Point:       []float64{float64(i) / 100, 1 - float64(i)/100},
	}
}

func openTest(t *testing.T, opts Options) (*Log, *Recovery) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rec
}

func TestAppendScanRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openTest(t, Options{Dir: dir})
	if rec.LastSeq != 0 || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %d records, last seq %d", len(rec.Records), rec.LastSeq)
	}
	const n = 50
	for i := 0; i < n; i++ {
		seq, err := l.Append(testRecord("Q1", i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, err := Scan(dir)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if got.Corrupt || got.TornBytes != 0 {
		t.Fatalf("clean log scanned corrupt=%v torn=%d (%s)", got.Corrupt, got.TornBytes, got.Reason)
	}
	if len(got.Records) != n || got.LastSeq != n {
		t.Fatalf("scanned %d records last seq %d, want %d/%d", len(got.Records), got.LastSeq, n, n)
	}
	for i, r := range got.Records {
		want := testRecord("Q1", i)
		want.Seq = uint64(i + 1)
		if r.Seq != want.Seq || r.Epoch != want.Epoch || r.Template != want.Template ||
			r.Plan != want.Plan || r.Cost != want.Cost || r.SelfLabeled != want.SelfLabeled {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, r, want)
		}
		if len(r.Point) != len(want.Point) {
			t.Fatalf("record %d point dims %d, want %d", i, len(r.Point), len(want.Point))
		}
		for d := range r.Point {
			if r.Point[d] != want.Point[d] {
				t.Fatalf("record %d point[%d] = %v, want %v", i, d, r.Point[d], want.Point[d])
			}
		}
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, Options{Dir: dir})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(testRecord("Q0", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, rec := openTest(t, Options{Dir: dir})
	if rec.LastSeq != 10 {
		t.Fatalf("recovered last seq %d, want 10", rec.LastSeq)
	}
	seq, err := l2.Append(testRecord("Q0", 10))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("append after reopen got seq %d, want 11", seq)
	}
	l2.Close()

	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 11 || len(got.Records) != 11 {
		t.Fatalf("final scan: %d records last seq %d", len(got.Records), got.LastSeq)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Small segments force several rotations.
	l, _ := openTest(t, Options{Dir: dir, SegmentBytes: 256})
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append(testRecord("Q2", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected several segments, got %v", names)
	}
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != n || got.LastSeq != n {
		t.Fatalf("rotated log lost records: %d/%d last seq %d", len(got.Records), n, got.LastSeq)
	}
	// Segment names must carry their first contained sequence number.
	for _, name := range names[1:] {
		first := segFirstSeq(name)
		if first == 0 {
			t.Fatalf("segment %s has unparseable first seq", name)
		}
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, Options{Dir: dir})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(testRecord("Q3", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	names, _ := segments(dir)
	path := filepath.Join(dir, names[len(names)-1])
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: drop the last 5 bytes.
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, rec := openTest(t, Options{Dir: dir})
	if rec.Corrupt {
		t.Fatalf("torn tail misreported as corruption: %s", rec.Reason)
	}
	if rec.TornBytes == 0 || rec.TornSegment == "" {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	if len(rec.Records) != 19 || rec.LastSeq != 19 {
		t.Fatalf("recovered %d records last seq %d, want 19", len(rec.Records), rec.LastSeq)
	}
	// The tear is physically gone: appends and rescans see a clean log.
	if _, err := l2.Append(testRecord("Q3", 20)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.TornBytes != 0 || got.Corrupt {
		t.Fatalf("tear survived reopen: %+v", got)
	}
	if got.LastSeq != 20 {
		t.Fatalf("post-repair last seq %d, want 20", got.LastSeq)
	}
}

func TestTornHeaderSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, Options{Dir: dir})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(testRecord("Q0", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate a crash during rotation: a later segment exists but holds
	// only a partial header.
	stub := filepath.Join(dir, segName(6))
	if err := os.WriteFile(stub, []byte("PPC"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openTest(t, Options{Dir: dir})
	if rec.Corrupt {
		t.Fatalf("torn header misreported as corruption: %s", rec.Reason)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	// The stub is gone; the same name may now hold the fresh live segment,
	// which must carry a full valid header (removal, not append-after).
	if data, err := os.ReadFile(stub); err != nil {
		t.Fatalf("live segment unreadable: %v", err)
	} else if string(data[:len(segMagic)]) != segMagic {
		t.Fatalf("segment %s does not start with a clean header: %q", stub, data[:len(segMagic)])
	}
	if _, err := l2.Append(testRecord("Q0", 5)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	got, err := Scan(dir)
	if err != nil || got.Corrupt || got.TornBytes != 0 {
		t.Fatalf("dir not clean after header repair: %+v err %v", got, err)
	}
	if got.LastSeq != 6 {
		t.Fatalf("last seq %d, want 6", got.LastSeq)
	}
}

func TestMidLogCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(testRecord("Q1", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, _ := segments(dir)
	if len(names) < 3 {
		t.Fatalf("need >=3 segments, got %v", names)
	}
	// Garble a byte inside the first record of a middle segment.
	mid := filepath.Join(dir, names[1])
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameOverhead+3] ^= 0xFF
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openTest(t, Options{Dir: dir, SegmentBytes: 256})
	if !rec.Corrupt {
		t.Fatal("mid-log corruption not reported")
	}
	if !strings.Contains(rec.Reason, names[1]) {
		t.Fatalf("reason %q does not name the damaged segment %s", rec.Reason, names[1])
	}
	if len(rec.QuarantinedSegments) != len(names)-2 {
		t.Fatalf("quarantined %v, want the %d segments after %s",
			rec.QuarantinedSegments, len(names)-2, names[1])
	}
	// Records from the first (clean) segment survive; nothing after the
	// damage is replayed.
	if len(rec.Records) == 0 || rec.Records[len(rec.Records)-1].Seq >= segFirstSeq(names[1])+uint64(len(rec.Records)) {
		t.Fatalf("unexpected record set: %d records, last seq %d",
			len(rec.Records), rec.Records[len(rec.Records)-1].Seq)
	}
	for _, q := range rec.QuarantinedSegments {
		if _, err := os.Stat(filepath.Join(dir, q)); !os.IsNotExist(err) {
			t.Fatalf("quarantined segment %s still present", q)
		}
		if _, err := os.Stat(filepath.Join(dir, q+".corrupt")); err != nil {
			t.Fatalf("quarantined segment %s not renamed aside: %v", q, err)
		}
	}
	// The log stays appendable past the damage.
	seq, err := l2.Append(testRecord("Q1", 99))
	if err != nil {
		t.Fatal(err)
	}
	if seq <= rec.LastSeq {
		t.Fatalf("append after corruption reused seq %d (last valid %d)", seq, rec.LastSeq)
	}
	l2.Close()
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(testRecord("Q0", i)); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := segments(dir)
	if len(names) < 3 {
		t.Fatalf("need >=3 segments, got %v", names)
	}
	// Checkpoint covering everything: every sealed segment may go, the live
	// one must stay.
	removed, err := l.Compact(l.LastSeq())
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(names)-1 {
		t.Fatalf("removed %d segments, want %d", removed, len(names)-1)
	}
	after, _ := segments(dir)
	if len(after) != 1 {
		t.Fatalf("segments after compact: %v", after)
	}
	// Records after the checkpoint still scan.
	if _, err := l.Append(testRecord("Q0", 40)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Corrupt {
		t.Fatalf("compacted log corrupt: %s", got.Reason)
	}
	if got.LastSeq != 41 {
		t.Fatalf("last seq %d, want 41", got.LastSeq)
	}
}

func TestCompactPartialCoverage(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(testRecord("Q2", i)); err != nil {
			t.Fatal(err)
		}
	}
	defer l.Close()
	names, _ := segments(dir)
	// Checkpoint covering only the first segment's records.
	minSeq := segFirstSeq(names[1]) - 1
	if _, err := l.Compact(minSeq); err != nil {
		t.Fatal(err)
	}
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Every record newer than the checkpoint must survive compaction.
	want := uint64(40) - minSeq
	var kept uint64
	for _, r := range got.Records {
		if r.Seq > minSeq {
			kept++
		}
	}
	if kept != want {
		t.Fatalf("compaction dropped uncovered records: kept %d of %d", kept, want)
	}
}

func TestSyncPolicies(t *testing.T) {
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParsePolicy(s)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != s {
			t.Fatalf("round trip %q -> %v -> %q", s, p, p.String())
		}
	}

	// SyncInterval: the first commit after the interval syncs, commits
	// inside the window do not (observable via the observer's sync count).
	obs := &countObserver{}
	l, _ := openTest(t, Options{Dir: t.TempDir(), Sync: SyncInterval, SyncInterval: time.Hour, Observer: obs})
	if _, err := l.Append(testRecord("Q0", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := obs.syncs.Load(); got != 0 {
		t.Fatalf("interval commit synced %d times inside the window", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := obs.syncs.Load(); got != 1 {
		t.Fatalf("explicit Sync recorded %d syncs, want 1", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	l, _ := openTest(t, Options{Dir: t.TempDir()})
	l.Close()
	if _, err := l.Append(testRecord("Q0", 0)); err == nil {
		t.Fatal("append on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, Options{Dir: dir, SegmentBytes: 512})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(testRecord("Q1", w*per+i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != workers*per {
		t.Fatalf("scanned %d records, want %d", len(got.Records), workers*per)
	}
	for i, r := range got.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d: sequence not dense", i, r.Seq)
		}
	}
}

func TestInjectedTornTail(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(7)
	obs := &countObserver{}
	l, _ := openTest(t, Options{Dir: dir, Faults: inj, Observer: obs})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(testRecord("Q0", i)); err != nil {
			t.Fatal(err)
		}
	}
	inj.Enable(faults.WALTornTail, 1)
	// The torn append and everything after it vanish, silently (the learner
	// keeps serving; durability is what degrades).
	for i := 10; i < 15; i++ {
		if _, err := l.Append(testRecord("Q0", i)); err != nil {
			t.Fatalf("torn-tail append surfaced error: %v", err)
		}
	}
	if got := obs.tears.Load(); got != 5 {
		t.Fatalf("observer counted %d dropped appends, want 5", got)
	}
	l.Close()

	// Reopen recovers exactly the pre-tear records and truncates the tear.
	l2, rec := openTest(t, Options{Dir: dir})
	defer l2.Close()
	if rec.Corrupt {
		t.Fatalf("injected tear misreported as corruption: %s", rec.Reason)
	}
	if rec.TornBytes == 0 {
		t.Fatal("injected tear left no torn bytes to report")
	}
	if len(rec.Records) != 10 || rec.LastSeq != 10 {
		t.Fatalf("recovered %d records last seq %d, want 10", len(rec.Records), rec.LastSeq)
	}
}

func TestInjectedShortWrite(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(11)
	l, _ := openTest(t, Options{Dir: dir, Faults: inj})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(testRecord("Q1", i)); err != nil {
			t.Fatal(err)
		}
	}
	inj.Enable(faults.WALShortWrite, 1)
	_, err := l.Append(testRecord("Q1", 5))
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("short write returned %v, want injected error", err)
	}
	inj.Disable(faults.WALShortWrite)
	// The repair keeps the segment well-formed: the next append lands and
	// the log scans clean.
	if _, err := l.Append(testRecord("Q1", 6)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Corrupt || got.TornBytes != 0 {
		t.Fatalf("short write left damage: %+v", got)
	}
	if len(got.Records) != 6 {
		t.Fatalf("scanned %d records, want 6 (5 + post-repair append)", len(got.Records))
	}
}

func TestInjectedFsyncError(t *testing.T) {
	inj := faults.New(3)
	obs := &countObserver{}
	l, _ := openTest(t, Options{Dir: t.TempDir(), Faults: inj, Observer: obs})
	defer l.Close()
	if _, err := l.Append(testRecord("Q2", 0)); err != nil {
		t.Fatal(err)
	}
	inj.Enable(faults.WALFsyncError, 1)
	if err := l.Commit(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Commit under fsync fault returned %v", err)
	}
	if got := obs.syncErrs.Load(); got != 1 {
		t.Fatalf("observer counted %d sync errors, want 1", got)
	}
	inj.DisableAll()
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit after fault cleared: %v", err)
	}
}
