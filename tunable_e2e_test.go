package ppc

// End-to-end tests for tunable LSH on the durable facade: re-tune switches
// are WAL-logged (kind-3 records) before they apply, checkpoints carry the
// retune section inside the learner's EncodeState bytes, and both recovery
// and replication replay them in log order — so a crash image restores the
// re-tuned ensemble exactly, twice over, and a converged replica predicts
// bit-identically to its leader after live re-tunes shipped.

import (
	"testing"

	"repro/internal/netproto"
)

// mutTunable enables tunable LSH with a low re-tune threshold so the
// durable test workloads cross it several times.
func mutTunable(o *Options) {
	o.TunableLSH = TunableLSHOptions{Enable: true, RetuneEvery: 40, Reservoir: 128}
}

// retuneEpoch reads the leader-side re-tune epoch of one template.
func retuneEpoch(t *testing.T, sys *System, template string) uint64 {
	t.Helper()
	st, err := sys.lookup(template)
	if err != nil {
		t.Fatal(err)
	}
	return st.online.RetuneEpoch()
}

// predictParity compares two Systems' learner-state predictions over the
// probe grid and fails on any divergence. It deliberately skips the
// Fingerprint field: plan fingerprints live in the plan-cache registry,
// which a checkpointless crash recovery rebuilds lazily as plans re-intern
// — cache state, not the learned state whose exactness is under test.
// Returns the OK-prediction count so callers can reject vacuous parity.
func predictParity(t *testing.T, label string, a, b *System, template string, dims int) int {
	t.Helper()
	hits := 0
	for i, point := range probeGrid(dims, 12) {
		req := netproto.PredictRequest{ID: uint64(i), Template: template, Point: point}
		l, r := a.PredictRPC(req), b.PredictRPC(req)
		if l.Status != r.Status || l.Plan != r.Plan || l.Confidence != r.Confidence ||
			l.Cost != r.Cost || l.CostKnown != r.CostKnown {
			t.Fatalf("%s diverged at %v:\na %+v\nb %+v", label, point, l, r)
		}
		if l.Status == netproto.StatusOK {
			hits++
		}
	}
	return hits
}

// TestRetuneCrashRecoveryTwice: kill -9 a leader that has re-tuned (crash
// image taken while it runs, WAL tail only — the checkpointer is off), and
// the recovered System must hold the identical re-tuned ensemble: same
// re-tune epoch, bit-identical predictions at every probed point. Then do
// it again from the recovered System, so replay-of-a-replay (checkpointless
// WAL with multiple interleaved kind-3 records) is covered too.
func TestRetuneCrashRecoveryTwice(t *testing.T) {
	dir := t.TempDir()
	sys := openDurable(t, dir, mutTunable)
	defer sys.Close() //nolint:errcheck
	runDurableWorkload(t, sys, 200, 3)
	if _, err := sys.TemplateStats("Q1"); err != nil { // flush the applier
		t.Fatal(err)
	}
	epoch1 := retuneEpoch(t, sys, "Q1")
	if epoch1 == 0 {
		t.Fatal("leader never re-tuned; recovery test is vacuous")
	}
	tmpl, err := sys.Template("Q1")
	if err != nil {
		t.Fatal(err)
	}

	img1 := crashImage(t, dir)
	rec1 := openDurable(t, img1, mutTunable)
	defer rec1.Close() //nolint:errcheck
	if got := retuneEpoch(t, rec1, "Q1"); got != epoch1 {
		t.Fatalf("first recovery restored retune epoch %d, leader at %d", got, epoch1)
	}
	// The metrics gauge must be seeded at recovery, not first re-reported at
	// the next live re-tune.
	snap, err := rec1.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range snap.Templates {
		if tm.Template == "Q1" && tm.Counters.RetuneEpoch != epoch1 {
			t.Errorf("recovered metrics report retune_epoch %d, learner at %d", tm.Counters.RetuneEpoch, epoch1)
		}
	}
	if hits := predictParity(t, "first recovery", sys, rec1, "Q1", tmpl.Degree()); hits == 0 {
		t.Fatal("no OK predictions across the probe grid; parity vacuous")
	}

	// Second crash: keep serving on the recovered System past more re-tunes,
	// then crash and recover again. The warm learner audits only a fraction
	// of runs (floor InvocationProb/2), so the phase is long enough to cross
	// the 40-insert re-tune threshold with margin.
	runDurableWorkload(t, rec1, 400, 5)
	if _, err := rec1.TemplateStats("Q1"); err != nil {
		t.Fatal(err)
	}
	epoch2 := retuneEpoch(t, rec1, "Q1")
	if epoch2 <= epoch1 {
		t.Fatalf("no further re-tune before the second crash (epoch %d -> %d)", epoch1, epoch2)
	}
	img2 := crashImage(t, img1)
	rec2 := openDurable(t, img2, mutTunable)
	defer rec2.Close() //nolint:errcheck
	if got := retuneEpoch(t, rec2, "Q1"); got != epoch2 {
		t.Fatalf("second recovery restored retune epoch %d, leader at %d", got, epoch2)
	}
	if hits := predictParity(t, "second recovery", rec1, rec2, "Q1", tmpl.Degree()); hits == 0 {
		t.Fatal("no OK predictions after the second recovery; parity vacuous")
	}
}

// TestLeaderReplicaRetuneParity mirrors TestLeaderReplicaCorrectionParity
// for the tunable-LSH state: the snapshot ships the retune section inside
// the EncodeState bytes, live re-tunes ship as kind-3 WAL records in stream
// order, and a converged replica holds the leader's re-tune epoch and
// predicts bit-identically.
func TestLeaderReplicaRetuneParity(t *testing.T) {
	sys := openDurable(t, t.TempDir(), mutTunable)
	defer sys.Close() //nolint:errcheck
	runDurableWorkload(t, sys, 150, 17)

	srv := fastServe(t, sys)
	st := fastReplica(t, srv.Addr())
	waitReplica(t, "snapshot install", st.Ready)
	installEpoch := retuneEpoch(t, sys, "Q1")

	// Live re-tunes fire while the replica tails the stream. The warm
	// learner only audits a fraction of runs (the audit floor is
	// InvocationProb/2), so the live phase is long enough to cross the
	// 40-insert re-tune threshold with margin.
	runDurableWorkload(t, sys, 500, 19)
	quiesce(t, sys)
	waitReplica(t, "catch-up", func() bool {
		return st.ReceivedSeq() == sys.WALLastSeq()
	})

	leaderEpoch := retuneEpoch(t, sys, "Q1")
	if leaderEpoch == 0 {
		t.Fatal("leader never re-tuned; parity is vacuous")
	}
	if leaderEpoch <= installEpoch {
		t.Fatalf("no re-tune shipped over the live stream (epoch %d at install, %d now)", installEpoch, leaderEpoch)
	}
	if got := st.RetuneEpoch("Q1"); got != leaderEpoch {
		t.Fatalf("replica retune epoch %d, leader %d", got, leaderEpoch)
	}

	tmpl, err := sys.Template("Q1")
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, point := range probeGrid(tmpl.Degree(), 12) {
		req := netproto.PredictRequest{ID: uint64(i), Template: "Q1", Point: point}
		l, r := sys.PredictRPC(req), st.PredictRPC(req)
		if l.Status != r.Status || l.Plan != r.Plan || l.Confidence != r.Confidence ||
			l.Cost != r.Cost || l.CostKnown != r.CostKnown ||
			l.Fingerprint != r.Fingerprint || l.Epoch != r.Epoch {
			t.Fatalf("diverged at %v:\nleader  %+v\nreplica %+v", point, l, r)
		}
		if l.Status == netproto.StatusOK {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no OK predictions across the probe grid; parity vacuous")
	}
}
