package client

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netproto"
	"repro/internal/replica"
)

// echoPredictor answers every request with a fixed plan and counts calls.
type echoPredictor struct {
	calls atomic.Int64
	delay time.Duration
}

func (p *echoPredictor) PredictRPC(req netproto.PredictRequest) netproto.PredictResult {
	p.calls.Add(1)
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	if req.Template == "missing" {
		return netproto.PredictResult{ID: req.ID, Status: netproto.StatusUnknownTemplate, ErrMsg: req.Template}
	}
	if req.Template == "null" {
		return netproto.PredictResult{ID: req.ID, Status: netproto.StatusNoPrediction}
	}
	return netproto.PredictResult{
		ID: req.ID, Status: netproto.StatusOK, Plan: 7, Confidence: 0.9,
		Cost: 42, CostKnown: true, Fingerprint: "plan-7",
	}
}

func newServer(t *testing.T, p replica.Predictor) *replica.Server {
	t.Helper()
	srv, err := replica.Serve(replica.Config{Addr: "127.0.0.1:0", Predictor: p})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return srv
}

func TestPredictRoundTrip(t *testing.T) {
	pred := &echoPredictor{}
	srv := newServer(t, pred)
	cl, err := Dial(Options{Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	res, err := cl.Predict("Q1", []float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != netproto.StatusOK || res.Plan != 7 || res.Fingerprint != "plan-7" {
		t.Fatalf("result %+v", res)
	}

	// NULL is an answer, not an error.
	res, err = cl.Predict("null", []float64{0.25})
	if err != nil || res.Status != netproto.StatusNoPrediction {
		t.Fatalf("null predict: %+v, %v", res, err)
	}

	// An unknown template is a typed failure — surfaced, not retried.
	before := pred.calls.Load()
	if _, err := cl.Predict("missing", []float64{0.25}); err == nil {
		t.Fatal("unknown template accepted")
	}
	if pred.calls.Load() != before+1 {
		t.Errorf("typed rejection retried: %d extra calls", pred.calls.Load()-before-1)
	}
}

func TestDialFailsFastOnBadAddr(t *testing.T) {
	if _, err := Dial(Options{Addr: "127.0.0.1:1", DialTimeout: 200 * time.Millisecond,
		MaxRetries: -1, RetryBackoff: time.Millisecond}); err == nil {
		t.Fatal("dial to a dead port succeeded")
	}
	if _, err := Dial(Options{}); err == nil {
		t.Fatal("empty address accepted")
	}
}

// TestRetryAfterConnectionLoss kills the pooled connection between calls;
// the retry layer must dial a fresh one transparently.
func TestRetryAfterConnectionLoss(t *testing.T) {
	pred := &echoPredictor{}
	srv := newServer(t, pred)
	cl, err := Dial(Options{Addr: srv.Addr(), RetryBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	if _, err := cl.Predict("Q1", []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	// Poison the pooled connection from the client side.
	cl.mu.Lock()
	for _, conn := range cl.idle {
		conn.NetConn().Close() //nolint:errcheck
	}
	cl.mu.Unlock()

	if _, err := cl.Predict("Q1", []float64{0.5}); err != nil {
		t.Fatalf("predict after connection loss: %v", err)
	}
}

// TestVersionMismatchSurfaced: a server that rejects the client's protocol
// version must produce a typed, non-retried error on the first call.
func TestConcurrentCallsUnderInFlightCap(t *testing.T) {
	pred := &echoPredictor{delay: 10 * time.Millisecond}
	srv := newServer(t, pred)
	cl, err := Dial(Options{Addr: srv.Addr(), MaxInFlight: 2, PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	const calls = 16
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	start := time.Now()
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Predict("Q1", []float64{0.5})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// 16 calls at 10ms on 2 slots cannot finish faster than ~80ms; the cap
	// is real backpressure, not a hint.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("16 capped calls finished in %v; in-flight cap not enforced", elapsed)
	}
}

func TestCallTimeout(t *testing.T) {
	pred := &echoPredictor{delay: 2 * time.Second}
	srv := newServer(t, pred)
	cl, err := Dial(Options{
		Addr: srv.Addr(), CallTimeout: 100 * time.Millisecond,
		MaxRetries: -1, RetryBackoff: time.Millisecond, Lazy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	start := time.Now()
	if _, err := cl.Predict("Q1", []float64{0.5}); err == nil {
		t.Fatal("slow server call did not time out")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout took %v, want ~100ms", elapsed)
	}
}

func TestClosedClient(t *testing.T) {
	srv := newServer(t, &echoPredictor{})
	cl, err := Dial(Options{Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Predict("Q1", []float64{0.5}); !errors.Is(err, ErrClosed) {
		t.Fatalf("predict on closed client: %v, want ErrClosed", err)
	}
}

func TestPoolReuse(t *testing.T) {
	pred := &echoPredictor{}
	srv := newServer(t, pred)
	cl, err := Dial(Options{Addr: srv.Addr(), PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	for i := 0; i < 10; i++ {
		if _, err := cl.Predict("Q1", []float64{0.5}); err != nil {
			t.Fatal(err)
		}
	}
	cl.mu.Lock()
	idle := len(cl.idle)
	cl.mu.Unlock()
	if idle != 1 {
		t.Errorf("%d idle connections after sequential calls, want 1 (reused)", idle)
	}
}
