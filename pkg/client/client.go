// Package client is the Go client for the PPC serving fleet's binary
// protocol (internal/netproto): predict RPCs against a leader or any
// predict-only replica, over pooled TCP connections with per-call
// deadlines, bounded retry with exponential backoff, and backpressure via
// an in-flight cap.
//
// Usage:
//
//	cl, err := client.Dial(client.Options{Addr: "10.0.0.5:7071"})
//	res, err := cl.Predict("Q1", []float64{900, 1200})
//	if err == nil && res.Status == netproto.StatusOK {
//	    // res.Plan / res.Fingerprint / res.Confidence
//	}
//
// A result with StatusNoPrediction is an answer, not an error: the learner
// declined (warm-up, low confidence) and the caller should fall back to
// its optimizer path, exactly as the in-process serving path would.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/netproto"
)

// Options configures a Client.
type Options struct {
	// Addr is the server address (leader or replica).
	Addr string
	// PoolSize caps pooled idle connections (default 4). Connections are
	// checked out exclusively per call, so PoolSize also bounds protocol-
	// level concurrency toward one server.
	PoolSize int
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline covering the write and the
	// response read (default 2s).
	CallTimeout time.Duration
	// MaxRetries bounds transparent retries after transport failures
	// (default 2; typed protocol rejections are never retried).
	MaxRetries int
	// RetryBackoff is the first retry's delay, doubling per attempt
	// (default 25ms).
	RetryBackoff time.Duration
	// MaxInFlight caps concurrent calls; callers past the cap block until
	// a slot frees (default 64). Backpressure degrades caller latency
	// instead of piling unbounded work onto a struggling server.
	MaxInFlight int
	// Lazy skips the eager liveness probe in Dial.
	Lazy bool
	// Faults optionally injects wire faults into outbound frames.
	Faults *faults.Injector
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 2 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	return o
}

// ErrClosed reports a call on a closed client.
var ErrClosed = errors.New("client: closed")

// Client is a pooled predict-RPC client. Safe for concurrent use.
type Client struct {
	opts   Options
	sem    chan struct{}
	nextID atomic.Uint64

	mu     sync.Mutex
	idle   []*netproto.Conn
	closed bool
}

// Dial validates the options and (unless Lazy) probes the server with a
// ping so a wrong address or version fails here, not on the first call.
func Dial(opts Options) (*Client, error) {
	opts = opts.withDefaults()
	if opts.Addr == "" {
		return nil, fmt.Errorf("client: empty address")
	}
	c := &Client{opts: opts, sem: make(chan struct{}, opts.MaxInFlight)}
	if !opts.Lazy {
		if err := c.Ping(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Close releases the pooled connections. In-flight calls finish on their
// own connections; subsequent calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, conn := range idle {
		conn.NetConn().Close() //nolint:errcheck
	}
	return nil
}

// Predict asks the server for a plan prediction. Transport failures are
// retried (bounded, with backoff) on a fresh connection; typed protocol
// rejections come back as *netproto.ErrorMsg-wrapped errors without retry.
// A StatusNoPrediction result has a nil error — NULL is an answer.
func (c *Client) Predict(template string, point []float64) (netproto.PredictResult, error) {
	req := netproto.PredictRequest{
		ID:       c.nextID.Add(1),
		Template: template,
		Point:    point,
	}
	var res netproto.PredictResult
	err := c.call(func(conn *netproto.Conn, scratch []byte) error {
		if werr := conn.WriteMsg(netproto.MsgPredict, req.Encode(scratch[:0])); werr != nil {
			return werr
		}
		t, body, rerr := conn.ReadMsg()
		if rerr != nil {
			return rerr
		}
		switch t {
		case netproto.MsgPredictResult:
			r, derr := netproto.DecodePredictResult(body)
			if derr != nil {
				return derr
			}
			if r.ID != req.ID {
				return fmt.Errorf("client: response id %d for request %d", r.ID, req.ID)
			}
			res = r
			return nil
		case netproto.MsgError:
			if em, derr := netproto.DecodeError(body); derr == nil {
				return em
			}
			return fmt.Errorf("client: malformed server error")
		}
		return fmt.Errorf("client: unexpected %v response", t)
	})
	if err != nil {
		return netproto.PredictResult{}, err
	}
	return res, res.Err()
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	return c.call(func(conn *netproto.Conn, _ []byte) error {
		if err := conn.WriteMsg(netproto.MsgPing, nil); err != nil {
			return err
		}
		t, body, err := conn.ReadMsg()
		if err != nil {
			return err
		}
		if t == netproto.MsgError {
			if em, derr := netproto.DecodeError(body); derr == nil {
				return em
			}
		}
		if t != netproto.MsgPong {
			return fmt.Errorf("client: unexpected %v response to ping", t)
		}
		return nil
	})
}

// call runs fn against a checked-out connection under the in-flight cap
// and the per-call deadline, retrying transport failures on a fresh
// connection with exponential backoff. A netproto.ErrorMsg from fn is a
// server-side rejection: the connection is still healthy protocol-wise,
// but the request will keep failing — returned without retry.
func (c *Client) call(fn func(conn *netproto.Conn, scratch []byte) error) error {
	c.sem <- struct{}{}
	defer func() { <-c.sem }()

	var scratch [256]byte
	backoff := c.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err := c.get()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return err
			}
			lastErr = err
			continue
		}
		deadline := time.Now().Add(c.opts.CallTimeout)
		conn.NetConn().SetDeadline(deadline) //nolint:errcheck
		err = fn(conn, scratch[:])
		if err == nil {
			c.put(conn)
			return nil
		}
		// Any failure poisons the connection (a half-read frame cannot be
		// resynchronized); typed rejections additionally stop the retries.
		conn.NetConn().Close() //nolint:errcheck
		var em netproto.ErrorMsg
		if errors.As(err, &em) {
			return em
		}
		lastErr = err
	}
	return lastErr
}

// get checks out an idle connection or dials a fresh one (sending the
// client hello — the server answers typed errors on mismatch, which the
// first call surfaces).
func (c *Client) get() (*netproto.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()

	raw, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.opts.Addr, err)
	}
	conn := netproto.NewConn(raw, c.opts.Faults)
	hello := netproto.Hello{Version: netproto.Version, Role: netproto.RoleClient}
	raw.SetWriteDeadline(time.Now().Add(c.opts.DialTimeout)) //nolint:errcheck
	if err := conn.WriteMsg(netproto.MsgHello, hello.Encode(nil)); err != nil {
		raw.Close() //nolint:errcheck
		return nil, err
	}
	return conn, nil
}

// put returns a healthy connection to the pool (or closes it when the
// pool is full or the client closed).
func (c *Client) put(conn *netproto.Conn) {
	conn.NetConn().SetDeadline(time.Time{}) //nolint:errcheck
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.opts.PoolSize {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.NetConn().Close() //nolint:errcheck
}
