// Trajectory: the paper's online scenario. An application's workload
// drifts through the parameter space along random trajectories (Figure 7);
// the online learner tracks it, reusing plans inside learned regions and
// falling back to the optimizer at frontiers. Midway, the workload jumps
// to a completely different region — watch the hit rate dip and recover.
//
//	go run ./examples/trajectory
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/queries"
	"repro/internal/tpch"
	"repro/internal/workload"
)

func main() {
	sys, err := ppc.Open(ppc.Options{TPCH: tpch.Config{Scale: 2000, Seed: 7}})
	if err != nil {
		log.Fatal(err)
	}
	const name = "Q5"
	if err := sys.Register(name, queries.Defs[5].SQL); err != nil {
		log.Fatal(err)
	}
	tmpl, _ := sys.Template(name)
	fmt.Printf("online learning on %s (parameter degree %d)\n%s\n\n", name, tmpl.Degree(), tmpl.Query)

	// Phase 1: a tight trajectory in one corner of the plan space.
	// Phase 2: an unrelated trajectory elsewhere (workload shift).
	phase1 := workload.MustTrajectories(workload.TrajectoryConfig{
		Dims: tmpl.Degree(), NumPoints: 300, Sigma: 0.015, Seed: 11,
	})
	phase2 := workload.MustTrajectories(workload.TrajectoryConfig{
		Dims: tmpl.Degree(), NumPoints: 300, Sigma: 0.015, Seed: 99,
	})
	points := append(phase1, phase2...)

	window := 50
	hits, invocations := 0, 0
	for i, p := range points {
		inst, err := sys.Optimizer().InstanceAt(tmpl, p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(name, inst.Values)
		if err != nil {
			log.Fatal(err)
		}
		if res.CacheHit {
			hits++
		}
		if res.Invoked {
			invocations++
		}
		if (i+1)%window == 0 {
			marker := ""
			if i+1 == len(phase1) {
				marker = "   <-- workload shifts to a new region"
			}
			fmt.Printf("queries %3d-%3d: %2d/%d cache hits, %2d optimizer calls%s\n",
				i+2-window, i+1, hits, window, invocations, marker)
			hits, invocations = 0, 0
		}
	}

	st, _ := sys.TemplateStats(name)
	fmt.Printf("\nfinal learner state: %d samples, synopsis %d bytes, est. precision %.2f, est. recall %.2f\n",
		st.SamplesAbsorbed, st.SynopsisBytes, st.Precision, st.Recall)
}
