// Multitemplate: the whole Q0–Q8 workload through one shared plan cache
// with a deliberately tight capacity, demonstrating the precision-aware
// eviction policy: plans of templates whose predictions keep verifying
// survive; error-prone or stale plans are evicted first.
//
//	go run ./examples/multitemplate
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/tpch"
	"repro/internal/workload"
)

func main() {
	sys, err := ppc.Open(ppc.Options{
		TPCH:          tpch.Config{Scale: 2000, Seed: 3},
		CacheCapacity: 8, // tight: Q0–Q8 produce far more distinct plans
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RegisterStandard(); err != nil {
		log.Fatal(err)
	}
	names := sys.TemplateNames()
	fmt.Printf("registered %d templates, cache capacity %d plans\n\n", len(names), 8)

	// Interleave locality-heavy workloads across all templates, the way a
	// mixed application would.
	perTemplate := 120
	streams := make(map[string][][]float64, len(names))
	for i, name := range names {
		tmpl, _ := sys.Template(name)
		streams[name] = workload.MustTrajectories(workload.TrajectoryConfig{
			Dims: tmpl.Degree(), NumPoints: perTemplate, Sigma: 0.02, Seed: int64(100 + i),
		})
	}
	rng := rand.New(rand.NewSource(5))
	hits := make(map[string]int, len(names))
	ran := make(map[string]int, len(names))
	cursor := make(map[string]int, len(names))
	for q := 0; q < perTemplate*len(names); q++ {
		name := names[rng.Intn(len(names))]
		if cursor[name] >= perTemplate {
			continue
		}
		tmpl, _ := sys.Template(name)
		inst, err := sys.Optimizer().InstanceAt(tmpl, streams[name][cursor[name]])
		if err != nil {
			log.Fatal(err)
		}
		cursor[name]++
		res, err := sys.Run(name, inst.Values)
		if err != nil {
			log.Fatal(err)
		}
		ran[name]++
		if res.CacheHit {
			hits[name]++
		}
	}

	fmt.Println("template  degree  queries  cache-hit%  est.precision  synopsis(B)")
	for _, name := range names {
		st, err := sys.TemplateStats(name)
		if err != nil {
			log.Fatal(err)
		}
		prec := "   -"
		if st.PrecisionKnown {
			prec = fmt.Sprintf("%.2f", st.Precision)
		}
		rate := 0.0
		if ran[name] > 0 {
			rate = 100 * float64(hits[name]) / float64(ran[name])
		}
		fmt.Printf("%-9s %6d  %7d  %9.0f%%  %13s  %11d\n",
			name, st.Degree, ran[name], rate, prec, st.SynopsisBytes)
	}
	fmt.Printf("\ncache: %d/%d plans resident, %d evictions over the run\n",
		sys.CacheLen(), 8, sys.CacheEvictions())
}
