// Planspace: visualize how the optimizer's plan choice varies with the
// parameters of a query template — the plan diagram of the paper's Figure
// 2 — and verify the plan choice predictability assumption the clustering
// framework rests on (Appendix B).
//
//	go run ./examples/planspace
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	env, err := experiments.NewEnv(1000, 2012)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's running example: Q1 over (selectivity of s_date <= v1,
	// selectivity of l_partkey <= v2).
	diagram, err := experiments.RunFig2(env, experiments.Fig2Config{Template: "Q1", Resolution: 40})
	if err != nil {
		log.Fatal(err)
	}
	tmpl, _ := env.Template("Q1")
	fmt.Printf("plan space of Q1: %s\n\n", tmpl.Query)
	diagram.Table().Fprint(os.Stdout)

	// Quantify the two assumptions the framework exploits: nearby points
	// usually share the optimal plan (choice predictability), and when
	// they do, costs are close (cost predictability).
	check, err := experiments.RunFig14(env, experiments.Fig14Config{
		Templates:  []string{"Q1"},
		TestPoints: 40,
		Neighbors:  120,
		Radii:      []float64{0.05, 0.1, 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan choice / cost predictability (Assumptions 1 and 2):")
	for _, row := range check.Rows {
		fmt.Printf("  d=%.2f: P(same plan)=%.3f (95%% lower bound %.3f), P(cost within 1.25x | same plan)=%.3f\n",
			row.Radius, row.SamePlanProb, row.LowerCI, row.CostWithinEps)
	}
}
