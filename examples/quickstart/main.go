// Quickstart: open a PPC-enabled database, register a parameterized SQL
// template, and run instances through the parametric plan cache.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/tpch"
)

func main() {
	// Open the system: generates a TPC-H-style database (1/2000 of SF1
	// here, to keep the example fast), builds optimizer statistics, and
	// attaches the plan cache.
	sys, err := ppc.Open(ppc.Options{TPCH: tpch.Config{Scale: 2000, Seed: 42}})
	if err != nil {
		log.Fatal(err)
	}

	// Register a query template. The two `?` placeholders are the explicit
	// template parameters; their predicate selectivities span the
	// template's 2-D plan space.
	err = sys.Register("revenue", `
		SELECT COUNT(*), SUM(l_extendedprice)
		FROM lineitem
		WHERE l_shipdate <= ? AND l_partkey <= ?`)
	if err != nil {
		log.Fatal(err)
	}

	// Run instances. Early queries warm the learner (the optimizer runs
	// and its plan choices feed the plan-space histograms); once the
	// neighborhood is learned, optimization is bypassed.
	tmpl, _ := sys.Template("revenue")
	stats := sys.Catalog().MustColumn("lineitem", "l_shipdate")
	parts := sys.Catalog().MustColumn("lineitem", "l_partkey")
	for i := 0; i < 60; i++ {
		// Dates around the 30th percentile, part keys around the 50th.
		date := stats.Quantile(0.28 + float64(i%5)*0.01)
		part := parts.Quantile(0.48 + float64(i%4)*0.01)
		res, err := sys.Run("revenue", []float64{date, part})
		if err != nil {
			log.Fatal(err)
		}
		if i%15 == 0 {
			status := "optimized"
			if res.CacheHit {
				status = "cache hit"
			}
			fmt.Printf("query %2d [%s] point=(%.2f, %.2f) rows=%.0f revenue=%.0f\n",
				i, status, res.Point[0], res.Point[1],
				res.Result.Rows[0][0].Num, res.Result.Rows[0][1].Num)
		}
	}

	st, _ := sys.TemplateStats("revenue")
	fmt.Printf("\ntemplate degree %d; learner absorbed %d optimizer-labeled points into a %d-byte synopsis\n",
		st.Degree, st.SamplesAbsorbed, st.SynopsisBytes)
	fmt.Printf("estimated precision %.2f, recall %.2f; %d plan(s) cached\n",
		st.Precision, st.Recall, sys.CacheLen())
	_ = tmpl
}
