package ppc

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/optimizer"
)

// State persistence: a parametric plan cache is only as good as what it
// has learned, so a System can save its learned state — the per-template
// histogram synopses, the plan registry, the cached plan trees and their
// recency order — and restore it after a restart, resuming with warm
// predictions instead of a cold re-learning phase.
//
// The database itself is regenerated deterministically from Options.TPCH,
// so only the learned state is persisted. Restoring requires a System
// opened with the same database configuration (enforced via a fingerprint
// of the generation parameters).

// savedSystem is the gob-encoded persistent form.
type savedSystem struct {
	// DBScale and DBSeed fingerprint the database the state was learned on.
	DBScale int
	DBSeed  int64
	// Fingerprints maps dense plan id -> fingerprint, in id order.
	Fingerprints []string
	// Templates carries each template's SQL and learner state.
	Templates []savedTemplate
	// Plans carries the cached plan trees.
	Plans []savedPlan
	// CacheMRU lists cached plan ids from least to most recently used.
	CacheMRU []int
}

type savedTemplate struct {
	Name    string
	SQL     string
	Learner []byte
}

type savedPlan struct {
	ID       int
	Template string
	Root     *optimizer.Node
	Cost     float64
	Print    string
}

// SaveState writes the system's learned state to w.
func (s *System) SaveState(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := savedSystem{DBScale: s.opts.TPCH.Scale, DBSeed: s.opts.TPCH.Seed}
	for id := 0; ; id++ {
		fp := s.reg.Fingerprint(id)
		if fp == "" {
			break
		}
		out.Fingerprints = append(out.Fingerprints, fp)
	}
	for _, name := range s.templateNamesLocked() {
		st := s.templates[name]
		var buf bytes.Buffer
		if err := st.online.EncodeState(&buf); err != nil {
			return fmt.Errorf("ppc: save template %s: %w", name, err)
		}
		out.Templates = append(out.Templates, savedTemplate{
			Name: name, SQL: st.tmpl.SQL, Learner: buf.Bytes(),
		})
	}
	for id, entry := range s.planByID {
		out.Plans = append(out.Plans, savedPlan{
			ID: id, Template: entry.template,
			Root: entry.plan.Root, Cost: entry.plan.Cost, Print: entry.plan.Fingerprint,
		})
	}
	// Preserve recency: the cache exposes no iteration, so approximate by
	// saving membership; hits re-establish order quickly. Membership is
	// what matters for avoiding re-optimization.
	for id := range s.planByID {
		if s.cache.Contains(id) {
			out.CacheMRU = append(out.CacheMRU, id)
		}
	}
	return gob.NewEncoder(w).Encode(&out)
}

// LoadState restores state written by SaveState into a freshly opened
// System (no templates registered, nothing run yet). The System must have
// been opened with the same database configuration.
func (s *System) LoadState(r io.Reader) error {
	var in savedSystem
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("ppc: load state: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if in.DBScale != s.opts.TPCH.Scale || in.DBSeed != s.opts.TPCH.Seed {
		return fmt.Errorf("ppc: state was learned on database scale=%d seed=%d, this system has scale=%d seed=%d",
			in.DBScale, in.DBSeed, s.opts.TPCH.Scale, s.opts.TPCH.Seed)
	}
	if s.reg.Count() != 0 || len(s.templates) != 0 {
		return fmt.Errorf("ppc: LoadState requires a fresh System")
	}
	// Rebuild the registry with identical dense ids.
	for want, fp := range in.Fingerprints {
		if got := s.reg.ID(fp); got != want {
			return fmt.Errorf("ppc: registry rebuild mismatch: %q -> %d, want %d", fp, got, want)
		}
	}
	// Re-register templates and restore their learners.
	for _, st := range in.Templates {
		if err := s.registerLocked(st.Name, st.SQL); err != nil {
			return err
		}
		if err := s.templates[st.Name].online.DecodeState(bytes.NewReader(st.Learner)); err != nil {
			return fmt.Errorf("ppc: restore template %s: %w", st.Name, err)
		}
	}
	// Restore plan trees and cache membership.
	for _, sp := range in.Plans {
		if sp.Root == nil {
			return fmt.Errorf("ppc: plan %d has no tree", sp.ID)
		}
		s.planByID[sp.ID] = &cachedPlan{
			template: sp.Template,
			plan:     &optimizer.Plan{Root: sp.Root, Cost: sp.Cost, Fingerprint: sp.Print},
		}
	}
	for _, id := range in.CacheMRU {
		entry, ok := s.planByID[id]
		if !ok {
			continue
		}
		s.cache.Put(id, entry.plan)
	}
	return nil
}

// templateNamesLocked returns sorted template names; callers hold s.mu.
func (s *System) templateNamesLocked() []string {
	names := make([]string, 0, len(s.templates))
	for n := range s.templates {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
