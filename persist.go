package ppc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/optimizer"
)

// State persistence: a parametric plan cache is only as good as what it
// has learned, so a System can save its learned state — the per-template
// histogram synopses, the plan registry, the cached plan trees and their
// recency order — and restore it after a restart, resuming with warm
// predictions instead of a cold re-learning phase.
//
// Snapshots are framed with a magic string, a version, a payload length
// and a CRC-32C checksum. Corruption (truncation, bit flips, garbage) is
// detected at load time and is NOT an error: a warm start is an
// optimization, so a damaged snapshot degrades the System to a cold
// learner and the damage is reported via LoadStateReport. Only
// non-recoverable mismatches — restoring onto the wrong database, or onto
// a System that has already learned — are hard *SnapshotError failures.
//
// The database itself is regenerated deterministically from Options.TPCH,
// so only the learned state is persisted.

const (
	// snapMagic opens every snapshot stream.
	snapMagic = "PPCSNAP\x00"
	// snapVersion is the current envelope version.
	snapVersion = 1
	// maxSnapBody caps the declared payload length so a corrupted length
	// field cannot drive a huge allocation.
	maxSnapBody = 1 << 30
)

// snapCRC is the Castagnoli polynomial table (same family as the synopsis
// streams in internal/core).
var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// savedSystem is the gob-encoded persistent form.
type savedSystem struct {
	// DBScale and DBSeed fingerprint the database the state was learned on.
	DBScale int
	DBSeed  int64
	// Fingerprints maps dense plan id -> fingerprint, in id order.
	Fingerprints []string
	// Templates carries each template's SQL and learner state.
	Templates []savedTemplate
	// Plans carries the cached plan trees.
	Plans []savedPlan
	// CacheMRU lists cached plan ids from least to most recently used.
	CacheMRU []int
}

type savedTemplate struct {
	Name    string
	SQL     string
	Learner []byte
	// CandFPs and CandEpoch carry the candidate plan set (fingerprints, and
	// the correction epoch it was generated at). Gob-additive: snapshots
	// written before the field decode it as empty, and restore falls back to
	// regeneration at registration time.
	CandFPs   []string
	CandEpoch uint64
}

type savedPlan struct {
	ID       int
	Template string
	Root     *optimizer.Node
	Cost     float64
	Print    string
}

// LoadReport describes what LoadState recovered from a snapshot and — when
// durability is enabled — what the WAL tail replay added on top of it.
type LoadReport struct {
	// Corrupt is true when the snapshot failed validation (bad magic,
	// truncation, checksum mismatch, undecodable payload) and the System
	// stayed (fully or partially) cold, or when the WAL carried damage
	// beyond an ordinary torn tail.
	Corrupt bool
	// Reason explains the detected corruption, empty when Corrupt is false.
	Reason string
	// ColdTemplates lists templates that were re-registered with a cold
	// learner because their saved synopsis failed to decode.
	ColdTemplates []string
	// Templates and Plans count what was successfully restored.
	Templates int
	Plans     int

	// WALEnabled reports whether the fields below are meaningful (the
	// System was opened with a Durability directory).
	WALEnabled bool
	// WALSegments counts the log segments scanned during recovery.
	WALSegments int
	// WALReplayed counts records applied into learners; WALSkipped the
	// records already covered by the checkpoint's watermarks; WALStale the
	// records dropped because a drift reset (or a template shape change)
	// superseded them.
	WALReplayed int
	WALSkipped  int
	WALStale    int
	// WALPending counts recovered records whose template is not registered
	// yet; they are applied when the template is registered and move into
	// the counters above.
	WALPending int
	// WALTornBytes and WALTornSegment report the torn tail Open truncated —
	// the expected artifact of a crash mid-append, not corruption.
	WALTornBytes   int64
	WALTornSegment string
	// WALQuarantined lists segments moved aside because mid-log damage made
	// their ordering untrustworthy.
	WALQuarantined []string
	// RecoveryDuration is the wall time of the whole recovery sequence:
	// WAL scan and repair, checkpoint load, and tail replay.
	RecoveryDuration time.Duration
}

// LoadStateReport returns the report of the most recent LoadState call, or
// nil if LoadState has not been called.
func (s *System) LoadStateReport() *LoadReport {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	return s.lastLoad
}

// SaveState writes the system's learned state to w in the framed,
// checksummed snapshot format.
//
// Under the snapshot architecture a save of a live system is per-template
// consistent, not globally atomic: each template's feedback mailbox is
// flushed — so every point already acknowledged by Run is in the synopsis —
// and its learner is then encoded under the learner's write lock while
// other templates keep serving. The plan registry is append-only with dense
// ids, so collecting its fingerprints AFTER the learners guarantees every
// plan id referenced by a synopsis is present in the saved registry; a plan
// id whose tree is missing from the saved cache simply re-optimizes on
// demand after restore, exactly like an evicted plan.
func (s *System) SaveState(w io.Writer) (err error) {
	defer capturePanic("ppc.SaveState", &err)
	out := savedSystem{DBScale: s.opts.TPCH.Scale, DBSeed: s.opts.TPCH.Seed}
	s.regMu.RLock()
	names := s.templateNamesLocked()
	states := make([]*templateState, len(names))
	for i, name := range names {
		states[i] = s.templates[name]
	}
	s.regMu.RUnlock()
	for i, name := range names {
		st := states[i]
		var buf bytes.Buffer
		st.flush()
		encErr := st.online.EncodeState(&buf)
		if encErr != nil {
			return &SnapshotError{Op: "save", Err: fmt.Errorf("template %s: %w", name, encErr)}
		}
		st.candMu.RLock()
		candFPs := append([]string(nil), st.candFPs...)
		candEpoch := st.candEpoch
		st.candMu.RUnlock()
		out.Templates = append(out.Templates, savedTemplate{
			Name: name, SQL: st.tmpl.SQL, Learner: buf.Bytes(),
			CandFPs: candFPs, CandEpoch: candEpoch,
		})
	}
	// Registry fingerprints come after the learners (see doc comment).
	for id := 0; ; id++ {
		fp := s.reg.Fingerprint(id)
		if fp == "" {
			break
		}
		out.Fingerprints = append(out.Fingerprints, fp)
	}
	s.cacheMu.RLock()
	for id, entry := range s.planByID {
		out.Plans = append(out.Plans, savedPlan{
			ID: id, Template: entry.owner.tmpl.Name,
			Root: entry.plan.Root, Cost: entry.plan.Cost, Print: entry.plan.Fingerprint,
		})
	}
	// Preserve recency: the cache exposes no iteration, so approximate by
	// saving membership; hits re-establish order quickly. Membership is
	// what matters for avoiding re-optimization.
	for id := range s.planByID {
		if s.cache.Contains(id) {
			out.CacheMRU = append(out.CacheMRU, id)
		}
	}
	s.cacheMu.RUnlock()

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&out); err != nil {
		return &SnapshotError{Op: "save", Err: err}
	}
	body := payload.Bytes()
	// The checksum is computed over the intact payload; an injected bit
	// flip afterwards mimics on-disk corruption and must be caught at load.
	sum := crc32.Checksum(body, snapCRC)
	if off, ok := s.opts.Faults.CorruptOffset(len(body)); ok {
		body[off] ^= 0xFF
	}

	var header bytes.Buffer
	header.WriteString(snapMagic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], snapVersion)
	header.Write(u16[:])
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(body)))
	header.Write(u64[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], sum)
	header.Write(u32[:])
	if _, err := w.Write(header.Bytes()); err != nil {
		return &SnapshotError{Op: "save", Err: err}
	}
	if _, err := w.Write(body); err != nil {
		return &SnapshotError{Op: "save", Err: err}
	}
	return nil
}

// LoadState restores state written by SaveState into a freshly opened
// System (no templates registered, nothing run yet). The System must have
// been opened with the same database configuration.
//
// A snapshot that fails validation — wrong magic, truncated stream,
// checksum mismatch, undecodable payload — is NOT an error: LoadState
// returns nil, leaves the System cold, and records the damage in
// LoadStateReport. A template whose learner synopsis fails to decode is
// re-registered cold while the rest of the snapshot is still used. Hard
// *SnapshotError failures are reserved for states no amount of degrading
// can fix: a snapshot from a different database, or a System that is not
// fresh.
func (s *System) LoadState(r io.Reader) (err error) {
	defer capturePanic("ppc.LoadState", &err)
	s.regMu.Lock()
	defer s.regMu.Unlock()
	report := &LoadReport{}
	s.loadMu.Lock()
	s.lastLoad = report
	s.loadMu.Unlock()
	if s.reg.Count() != 0 || len(s.templates) != 0 {
		return &SnapshotError{Op: "load", Err: fmt.Errorf("LoadState requires a fresh System")}
	}

	in, reason := decodeSnapshot(r)
	if reason != "" {
		report.Corrupt = true
		report.Reason = reason
		return nil // degrade to cold
	}
	if in.DBScale != s.opts.TPCH.Scale || in.DBSeed != s.opts.TPCH.Seed {
		return &SnapshotError{Op: "load", Err: fmt.Errorf(
			"state was learned on database scale=%d seed=%d, this system has scale=%d seed=%d",
			in.DBScale, in.DBSeed, s.opts.TPCH.Scale, s.opts.TPCH.Seed)}
	}
	// Rebuild the registry with identical dense ids.
	for want, fp := range in.Fingerprints {
		if got := s.reg.ID(fp); got != want {
			return &SnapshotError{Op: "load", Err: fmt.Errorf(
				"registry rebuild mismatch: %q -> %d, want %d", fp, got, want)}
		}
	}
	// Re-register templates and restore their learners. A synopsis that
	// fails to decode leaves that template cold rather than failing the
	// whole restore.
	for _, st := range in.Templates {
		if err := s.registerLocked(st.Name, st.SQL); err != nil {
			return err
		}
		if derr := s.templates[st.Name].online.DecodeState(bytes.NewReader(st.Learner)); derr != nil {
			report.Corrupt = true
			if report.Reason == "" {
				report.Reason = fmt.Sprintf("template %s synopsis: %v", st.Name, derr)
			}
			report.ColdTemplates = append(report.ColdTemplates, st.Name)
			// Replace the half-decoded learner with a cold one.
			if rerr := s.recreateLearnerLocked(st.Name); rerr != nil {
				return rerr
			}
			continue
		}
		// The retune gauge is otherwise only written on live re-tunes; seed
		// it so a restored system reports its re-tuned state immediately.
		s.templates[st.Name].obs.SetRetuneEpoch(s.templates[st.Name].online.RetuneEpoch())
		// Adopt the saved candidate set over the one registerLocked just
		// regenerated: the saved fingerprints were produced at the saved
		// correction epoch, which the restored learner state is in lockstep
		// with. Ids resolve through the rebuilt registry (dense, identical).
		if len(st.CandFPs) > 0 {
			ts := s.templates[st.Name]
			ids := make([]int, len(st.CandFPs))
			for i, fp := range st.CandFPs {
				ids[i] = s.reg.ID(fp)
			}
			ts.candMu.Lock()
			ts.candIDs = ids
			ts.candFPs = append([]string(nil), st.CandFPs...)
			ts.candEpoch = st.CandEpoch
			ts.candMu.Unlock()
			ts.obs.SetCandidatePlans(len(ids))
		}
		report.Templates++
	}
	// Restore plan trees and cache membership under the cache lock
	// (regMu > cacheMu in the hierarchy). A plan without a tree, or whose
	// owning template is not in the snapshot, is dropped (Run re-optimizes
	// on demand).
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	for _, sp := range in.Plans {
		owner := s.templates[sp.Template]
		if sp.Root == nil || owner == nil {
			report.Corrupt = true
			if report.Reason == "" {
				report.Reason = fmt.Sprintf("plan %d has no tree or unknown template %q", sp.ID, sp.Template)
			}
			continue
		}
		s.planByID[sp.ID] = &cachedPlan{
			owner: owner,
			plan:  &optimizer.Plan{Root: sp.Root, Cost: sp.Cost, Fingerprint: sp.Print},
		}
		report.Plans++
	}
	for _, id := range in.CacheMRU {
		entry, ok := s.planByID[id]
		if !ok {
			continue
		}
		s.cache.Put(id, entry.plan)
	}
	return nil
}

// decodeSnapshot validates the envelope and decodes the payload. It
// returns a non-empty reason string when the stream is corrupt.
func decodeSnapshot(r io.Reader) (*savedSystem, string) {
	var magic [len(snapMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Sprintf("short header: %v", err)
	}
	if string(magic[:]) != snapMagic {
		return nil, "bad magic (not a PPC snapshot)"
	}
	var u16 [2]byte
	if _, err := io.ReadFull(r, u16[:]); err != nil {
		return nil, fmt.Sprintf("short version: %v", err)
	}
	if v := binary.LittleEndian.Uint16(u16[:]); v != snapVersion {
		return nil, fmt.Sprintf("unsupported snapshot version %d", v)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return nil, fmt.Sprintf("short length: %v", err)
	}
	n := binary.LittleEndian.Uint64(u64[:])
	if n > maxSnapBody {
		return nil, fmt.Sprintf("implausible payload length %d", n)
	}
	var u32 [4]byte
	if _, err := io.ReadFull(r, u32[:]); err != nil {
		return nil, fmt.Sprintf("short checksum: %v", err)
	}
	want := binary.LittleEndian.Uint32(u32[:])
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Sprintf("truncated payload: %v", err)
	}
	if got := crc32.Checksum(body, snapCRC); got != want {
		return nil, fmt.Sprintf("checksum mismatch: got %08x want %08x", got, want)
	}
	var in savedSystem
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&in); err != nil {
		return nil, fmt.Sprintf("payload decode: %v", err)
	}
	return &in, ""
}

// recreateLearnerLocked replaces a template's learner with a cold one
// (used when its saved synopsis is corrupt). The old state's background
// applier is stopped first so the re-registration cannot leak a goroutine.
// Callers hold s.regMu.
func (s *System) recreateLearnerLocked(name string) error {
	st := s.templates[name]
	tmpl := st.tmpl
	sql := tmpl.SQL
	st.shutdown()
	delete(s.templates, name)
	// Cold means cold: a half-restored correction state is dropped with the
	// learner (re-registration creates a fresh one).
	if s.stats != nil {
		s.stats.Drop(name)
	}
	return s.registerLocked(name, sql)
}

// templateNamesLocked returns sorted template names; callers hold s.regMu.
func (s *System) templateNamesLocked() []string {
	names := make([]string, 0, len(s.templates))
	for n := range s.templates {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
