package ppc

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/faults"
)

// Typed errors for the hardened System boundary. The production stance is
// that a misbehaving learner must never make a query fail or return a worse
// answer than "just call the optimizer": internal panics are recovered into
// *InternalError at the exported API surface, pipeline-stage failures
// (optimizer, recosting, execution) surface as *PipelineError, and snapshot
// problems as *SnapshotError. errors.As works on all three.

// InternalError reports a panic recovered at the System API boundary. It
// indicates a bug in an internal package; the System remains usable.
type InternalError struct {
	// Op is the public method that recovered the panic (e.g. "ppc.Run").
	Op string
	// Recovered is the panic value.
	Recovered any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *InternalError) Error() string {
	return fmt.Sprintf("ppc: internal panic in %s: %v", e.Op, e.Recovered)
}

// PipelineError reports a failure in one stage of the Figure-1 pipeline
// while running a query instance.
type PipelineError struct {
	// Stage is the failed stage: "optimize", "recost" or "execute".
	Stage string
	// Template is the query template being run.
	Template string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *PipelineError) Error() string {
	return fmt.Sprintf("ppc: %s %s: %v", e.Stage, e.Template, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *PipelineError) Unwrap() error { return e.Err }

// SnapshotError reports a persistence failure that is not recoverable by
// degrading to a cold learner (e.g. restoring onto the wrong database or a
// non-fresh System). Detected snapshot corruption is NOT an error — see
// LoadState and LoadReport.
type SnapshotError struct {
	// Op is "save" or "load".
	Op string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *SnapshotError) Error() string {
	return fmt.Sprintf("ppc: snapshot %s: %v", e.Op, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *SnapshotError) Unwrap() error { return e.Err }

// IsInjectedFault reports whether err originates from a fault injector
// (chaos tests distinguish injected failures from organic bugs).
func IsInjectedFault(err error) bool {
	return errors.Is(err, faults.ErrInjected)
}

// capturePanic converts a panic into an *InternalError on the named return.
// Usage: defer capturePanic("ppc.Run", &err). It must be deferred before
// the mutex unlock so the lock is released before the panic is absorbed.
func capturePanic(op string, errp *error) {
	if r := recover(); r != nil {
		*errp = &InternalError{Op: op, Recovered: r, Stack: debug.Stack()}
	}
}
