package ppc

// End-to-end tests for the candidate-generation subsystem: at Register the
// facade enumerates a diverse plan set under perturbed selectivities and
// interns it into the shared cache, so the learner routes among real,
// structurally distinct plans from the first query; after a correction
// epoch bump the set regenerates under the corrected estimates and routing
// lands on the plan an undistorted optimizer would pick.

import (
	"testing"

	"repro/internal/tpch"
)

// openCandidateSystem opens the PR 9 distorted adaptive substrate with
// candidate generation on top: a 6x-biased base estimator the correction
// learner can absorb, synchronous feedback, and the candidate set interned
// at Register.
func openCandidateSystem(t *testing.T) *System {
	t.Helper()
	sys, err := Open(Options{
		TPCH:          tpch.Config{Scale: 1000, Seed: 5},
		Online:        onlineForTest(),
		FeedbackQueue: -1,
		StatsWrap:     distortLineitem,
		Candidates:    CandidatesOptions{Enable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() }) //nolint:errcheck
	return sys
}

// candidateFingerprints snapshots the template's current candidate set.
func candidateFingerprints(st *templateState) []string {
	st.candMu.RLock()
	defer st.candMu.RUnlock()
	return append([]string(nil), st.candFPs...)
}

// TestCandidateSetDiverseAtRegister: registration alone must intern at
// least 3 structurally distinct candidate plans for the running-example
// template — before any query runs — and surface the count on the metrics
// snapshot.
func TestCandidateSetDiverseAtRegister(t *testing.T) {
	sys := openCandidateSystem(t)
	if err := sys.Register("Q1", mustSQL(t, "Q1")); err != nil {
		t.Fatal(err)
	}
	st, err := sys.lookup("Q1")
	if err != nil {
		t.Fatal(err)
	}
	fps := candidateFingerprints(st)
	distinct := make(map[string]bool, len(fps))
	for _, fp := range fps {
		distinct[fp] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("Register interned %d distinct candidate plans (%v), want >= 3", len(distinct), fps)
	}
	if len(distinct) != len(fps) {
		t.Errorf("candidate set holds duplicates: %v", fps)
	}
	snap, err := sys.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range snap.Templates {
		if tm.Template == "Q1" && tm.Counters.CandidatePlans != int64(len(fps)) {
			t.Errorf("metrics report %d candidate plans, set holds %d", tm.Counters.CandidatePlans, len(fps))
		}
	}
	// Every candidate is live in the shared cache, recostable for routing.
	sys.cacheMu.RLock()
	st.candMu.RLock()
	for i, id := range st.candIDs {
		entry := sys.planByID[id]
		if entry == nil || entry.owner != st || entry.rebind == nil {
			t.Errorf("candidate %d (plan id %d) not live in the cache", i, id)
		}
	}
	st.candMu.RUnlock()
	sys.cacheMu.RUnlock()
}

// TestCandidateRoutingUnderDistortion is the tentpole acceptance criterion:
// under the 6x distortion the learner's optimizer invocations are served by
// candidate routing (recost the interned set, cheapest wins) rather than
// full optimization, and once the corrections converge — bumping the
// correction epoch and regenerating the set — routing picks exactly the
// plan a ground-truth (undistorted) optimizer picks, without ever waiting
// for a cache miss to discover it.
func TestCandidateRoutingUnderDistortion(t *testing.T) {
	// Ground truth: the plan an undistorted optimizer picks at the probe.
	truth, err := Open(Options{
		TPCH:          tpch.Config{Scale: 1000, Seed: 5},
		Online:        onlineForTest(),
		FeedbackQueue: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer truth.Close() //nolint:errcheck
	if err := truth.Register("Q1", mustSQL(t, "Q1")); err != nil {
		t.Fatal(err)
	}
	tmpl, err := truth.Template("Q1")
	if err != nil {
		t.Fatal(err)
	}
	probe, err := truth.Optimizer().InstanceAt(tmpl, []float64{0.3, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	truthPlan, err := truth.Optimizer().Optimize(tmpl.Query, probe.Values)
	if err != nil {
		t.Fatal(err)
	}

	sys := openCandidateSystem(t)
	if err := sys.Register("Q1", mustSQL(t, "Q1")); err != nil {
		t.Fatal(err)
	}
	st, err := sys.lookup("Q1")
	if err != nil {
		t.Fatal(err)
	}
	// The skewed workload warms the corrections (epoch bumps regenerate the
	// candidate set under the corrected estimates) while the learner's
	// optimizer invocations route among the candidates throughout.
	runSkewed(t, sys, 300, 7)
	if _, err := sys.TemplateStats("Q1"); err != nil { // flush the applier
		t.Fatal(err)
	}

	snap, err := sys.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range snap.Templates {
		if tm.Template != "Q1" {
			continue
		}
		if tm.Counters.CandidateRouted == 0 {
			t.Error("no learner invocation was candidate-routed across 300 runs")
		}
		if tm.Counters.CandidatePlans < 3 {
			t.Errorf("candidate set shrank to %d plans", tm.Counters.CandidatePlans)
		}
	}

	// The converged set contains the ground-truth plan and routing picks it.
	if !st.candidateHas(truthPlan.Fingerprint) {
		t.Fatalf("converged candidate set %v does not contain the ground-truth plan %s",
			candidateFingerprints(st), truthPlan.Fingerprint)
	}
	id, _, ok := sys.candidateRoute(st, probe.Values)
	if !ok {
		t.Fatal("candidate routing declined at the probe point after convergence")
	}
	sys.cacheMu.RLock()
	entry := sys.planByID[id]
	sys.cacheMu.RUnlock()
	if entry == nil {
		t.Fatalf("routed plan id %d not in the cache", id)
	}
	if entry.plan.Fingerprint != truthPlan.Fingerprint {
		t.Errorf("candidate routing picked %s, ground-truth optimizer picks %s",
			entry.plan.Fingerprint, truthPlan.Fingerprint)
	}
}
