package ppc

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/queries"
	"repro/internal/tpch"
)

// The System must be safe for concurrent use: parallel goroutines running
// different templates through the shared cache. Run with -race.
func TestConcurrentRuns(t *testing.T) {
	sys, err := Open(Options{
		TPCH:   tpch.Config{Scale: 2000, Seed: 5},
		Online: onlineForTest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterStandard(); err != nil {
		t.Fatal(err)
	}
	names := []string{"Q0", "Q1", "Q2", "Q3"}
	var wg sync.WaitGroup
	errs := make(chan error, len(names))
	for gi, name := range names {
		wg.Add(1)
		go func(gi int, name string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			tmpl, err := sys.Template(name)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 40; i++ {
				point := make([]float64, tmpl.Degree())
				for j := range point {
					point[j] = 0.2 + rng.Float64()*0.3
				}
				inst, err := sys.Optimizer().InstanceAt(tmpl, point)
				if err != nil {
					errs <- err
					return
				}
				if _, err := sys.Run(name, inst.Values); err != nil {
					errs <- err
					return
				}
			}
		}(gi, name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, name := range names {
		st, err := sys.TemplateStats(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.SamplesAbsorbed == 0 {
			t.Errorf("%s absorbed no samples", name)
		}
	}
}

// Registering while running must not race either.
func TestConcurrentRegisterAndRun(t *testing.T) {
	sys, err := Open(Options{
		TPCH:   tpch.Config{Scale: 2000, Seed: 5},
		Online: onlineForTest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register("Q0", queries.Defs[0].SQL); err != nil {
		t.Fatal(err)
	}
	tmpl, _ := sys.Template("Q0")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i < len(queries.Defs); i++ {
			if err := sys.Register(queries.Defs[i].Name, queries.Defs[i].SQL); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 30; i++ {
			inst, err := sys.Optimizer().InstanceAt(tmpl, []float64{rng.Float64(), rng.Float64()})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := sys.Run("Q0", inst.Values); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := len(sys.TemplateNames()); got != 9 {
		t.Errorf("templates = %d", got)
	}
}

// Per-template isolation: one template's tripped breaker must not leak into
// any other template's serving path. Q0's breaker is forced open, then all
// four templates run in parallel while two more goroutines hammer SaveState
// and TemplateStats — under the old global mutex this was trivially true
// (and trivially slow); under sharded locks it is the property the design
// must preserve.
func TestParallelTemplateIsolation(t *testing.T) {
	sys, err := Open(Options{
		TPCH:   tpch.Config{Scale: 2000, Seed: 5},
		Online: onlineForTest(),
		// A cooldown far beyond the run count keeps Q0's breaker
		// deterministically open; the negative floor disables
		// precision trips so no other template can degrade.
		Breaker: metrics.BreakerConfig{FailureThreshold: 3, Cooldown: 1_000_000, PrecisionFloor: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterStandard(); err != nil {
		t.Fatal(err)
	}
	names := []string{"Q0", "Q1", "Q2", "Q3"}

	// Trip Q0's breaker directly, as three consecutive learner errors would.
	st, err := sys.lookup("Q0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		st.breaker.RecordFailure()
	}
	if got := st.breaker.State(); got != metrics.BreakerOpen {
		t.Fatalf("Q0 breaker state after trip = %v", got)
	}

	const runsPerTemplate = 40
	var wg sync.WaitGroup
	done := make(chan struct{})
	for gi, name := range names {
		wg.Add(1)
		go func(gi int, name string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			tmpl, err := sys.Template(name)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < runsPerTemplate; i++ {
				point := make([]float64, tmpl.Degree())
				for j := range point {
					point[j] = 0.2 + rng.Float64()*0.3
				}
				inst, err := sys.Optimizer().InstanceAt(tmpl, point)
				if err != nil {
					t.Error(err)
					return
				}
				res, err := sys.Run(name, inst.Values)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				if name == "Q0" && !res.Degraded {
					t.Errorf("Q0 run %d served non-degraded with its breaker open", i)
					return
				}
				if name != "Q0" && res.Degraded {
					t.Errorf("%s run %d degraded: Q0's breaker leaked across templates", name, i)
					return
				}
			}
		}(gi, name)
	}
	// Stress the read paths that cross templates while the runs proceed.
	var stress sync.WaitGroup
	stress.Add(2)
	go func() {
		defer stress.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var buf bytes.Buffer
			if err := sys.SaveState(&buf); err != nil {
				t.Errorf("concurrent SaveState: %v", err)
				return
			}
		}
	}()
	go func() {
		defer stress.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			name := names[i%len(names)]
			if _, err := sys.TemplateStats(name); err != nil {
				t.Errorf("concurrent TemplateStats(%s): %v", name, err)
				return
			}
			if _, err := sys.TemplateHealth(name); err != nil {
				t.Errorf("concurrent TemplateHealth(%s): %v", name, err)
				return
			}
		}
	}()
	wg.Wait()
	close(done)
	stress.Wait()
	if t.Failed() {
		return
	}

	for _, name := range names {
		h, err := sys.TemplateHealth(name)
		if err != nil {
			t.Fatal(err)
		}
		if name == "Q0" {
			if h.Breaker.State != "open" {
				t.Errorf("Q0 breaker ended %q, want open", h.Breaker.State)
			}
			if h.DegradedRuns != runsPerTemplate {
				t.Errorf("Q0 DegradedRuns = %d, want %d", h.DegradedRuns, runsPerTemplate)
			}
			continue
		}
		if h.Breaker.State != "closed" || h.DegradedRuns != 0 {
			t.Errorf("%s ended breaker=%q degraded=%d, want closed/0", name, h.Breaker.State, h.DegradedRuns)
		}
		st, err := sys.TemplateStats(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.SamplesAbsorbed == 0 {
			t.Errorf("%s absorbed no samples while Q0 was quarantined", name)
		}
	}
}

// Chaos under concurrency: parallel goroutines run queries while faults
// fire and another goroutine repeatedly snapshots the live system. Injected
// failures are tolerated (typed), anything else — including data races
// under -race — fails the test.
func TestConcurrentRunsUnderFaults(t *testing.T) {
	inj := faults.New(99).
		Enable(faults.OptimizerError, 0.15).
		Enable(faults.ExecutorError, 0.15).
		Enable(faults.LearnerMisprediction, 0.15)
	sys, err := Open(Options{
		TPCH:    tpch.Config{Scale: 2000, Seed: 5},
		Online:  onlineForTest(),
		Breaker: chaosBreaker(),
		Faults:  inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterStandard(); err != nil {
		t.Fatal(err)
	}
	names := []string{"Q0", "Q1", "Q2", "Q3"}
	var wg sync.WaitGroup
	for gi, name := range names {
		wg.Add(1)
		go func(gi int, name string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			tmpl, err := sys.Template(name)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				point := make([]float64, tmpl.Degree())
				for j := range point {
					point[j] = 0.25 + rng.Float64()*0.1
				}
				inst, err := sys.Optimizer().InstanceAt(tmpl, point)
				if err != nil {
					t.Error(err)
					return
				}
				_, err = sys.Run(name, inst.Values)
				if err != nil && !IsInjectedFault(err) {
					t.Errorf("%s: non-injected failure under chaos: %v", name, err)
					return
				}
			}
		}(gi, name)
	}
	// Snapshot the live system concurrently with the runs (and with
	// SnapshotCorruption armed for some of the saves).
	var lastGood bytes.Buffer
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if i == 4 {
				inj.Enable(faults.SnapshotCorruption, 1)
			}
			var buf bytes.Buffer
			if err := sys.SaveState(&buf); err != nil {
				t.Errorf("concurrent SaveState: %v", err)
				return
			}
			if i < 4 {
				lastGood = buf
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// The snapshot taken mid-chaos must restore (or detectably degrade) on
	// a fresh system.
	cold, err := Open(Options{TPCH: tpch.Config{Scale: 2000, Seed: 5}, Online: onlineForTest()})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.LoadState(bytes.NewReader(lastGood.Bytes())); err != nil {
		t.Fatalf("restore of mid-chaos snapshot: %v", err)
	}
	if rep := cold.LoadStateReport(); rep == nil || rep.Corrupt {
		t.Fatalf("clean mid-chaos snapshot misreported: %+v", rep)
	}
	// The faulted system must have made progress despite the chaos.
	for _, name := range names {
		st, err := sys.TemplateStats(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.SamplesAbsorbed == 0 {
			t.Errorf("%s absorbed no samples under chaos", name)
		}
	}
}
