package ppc

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/queries"
	"repro/internal/tpch"
)

// The System must be safe for concurrent use: parallel goroutines running
// different templates through the shared cache. Run with -race.
func TestConcurrentRuns(t *testing.T) {
	sys, err := Open(Options{
		TPCH:   tpch.Config{Scale: 2000, Seed: 5},
		Online: onlineForTest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterStandard(); err != nil {
		t.Fatal(err)
	}
	names := []string{"Q0", "Q1", "Q2", "Q3"}
	var wg sync.WaitGroup
	errs := make(chan error, len(names))
	for gi, name := range names {
		wg.Add(1)
		go func(gi int, name string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			tmpl, err := sys.Template(name)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 40; i++ {
				point := make([]float64, tmpl.Degree())
				for j := range point {
					point[j] = 0.2 + rng.Float64()*0.3
				}
				inst, err := sys.Optimizer().InstanceAt(tmpl, point)
				if err != nil {
					errs <- err
					return
				}
				if _, err := sys.Run(name, inst.Values); err != nil {
					errs <- err
					return
				}
			}
		}(gi, name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, name := range names {
		st, err := sys.TemplateStats(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.SamplesAbsorbed == 0 {
			t.Errorf("%s absorbed no samples", name)
		}
	}
}

// Registering while running must not race either.
func TestConcurrentRegisterAndRun(t *testing.T) {
	sys, err := Open(Options{
		TPCH:   tpch.Config{Scale: 2000, Seed: 5},
		Online: onlineForTest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register("Q0", queries.Defs[0].SQL); err != nil {
		t.Fatal(err)
	}
	tmpl, _ := sys.Template("Q0")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i < len(queries.Defs); i++ {
			if err := sys.Register(queries.Defs[i].Name, queries.Defs[i].SQL); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 30; i++ {
			inst, err := sys.Optimizer().InstanceAt(tmpl, []float64{rng.Float64(), rng.Float64()})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := sys.Run("Q0", inst.Values); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := len(sys.TemplateNames()); got != 9 {
		t.Errorf("templates = %d", got)
	}
}
