// Package ppc is the public facade of the parametric plan caching (PPC)
// reproduction: it wires the TPC-H-style database substrate, the cost-based
// optimizer, the bulk executor, the bounded plan cache, and one online
// density-based plan space learner per registered query template
// (ONLINE-APPROXIMATE-LSH-HISTOGRAMS, paper Sections IV-C/D/E) into a
// single System that applications drive with SQL templates and parameter
// values.
//
// Typical use:
//
//	sys, err := ppc.Open(ppc.Options{})
//	sys.Register("Q1", `SELECT s.s_suppkey, COUNT(*) FROM supplier s, lineitem l
//	                    WHERE l.l_suppkey = s.s_suppkey AND s.s_date <= ? AND l.l_partkey <= ?
//	                    GROUP BY s.s_suppkey`)
//	res, err := sys.Run("Q1", []float64{900, 1200})
//	// res.CacheHit tells whether optimization was bypassed;
//	// res.Result carries the executed rows.
//
// The workflow matches the paper's Figure 1: every instance is mapped to
// its plan space point (the selectivity vector of its parameterized
// predicates); the learner predicts a cached plan or defers to the
// optimizer; optimizer-validated points feed the histogram synopses; and
// sliding-window precision estimates drive cache eviction and drift
// recovery.
package ppc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/candidates"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/queries"
	"repro/internal/sqlparse"
	"repro/internal/stats"
	"repro/internal/tpch"
	"repro/internal/wal"
)

// Options configures a System.
type Options struct {
	// TPCH configures the generated database; zero value uses
	// tpch.DefaultConfig().
	TPCH tpch.Config
	// CatalogBuckets is the per-column histogram resolution (0 = default).
	CatalogBuckets int
	// CacheCapacity bounds the plan cache (default 64 plans).
	CacheCapacity int
	// Online configures the per-template learners; the Core.Dims field is
	// overridden per template with its parameter degree.
	Online core.OnlineConfig
	// ExecutePlans controls whether Run actually executes plans against
	// the in-memory database (default true). Disable for prediction-only
	// workloads (e.g. large parameter sweeps).
	ExecutePlans bool
	// DisableExecution is the explicit off switch for ExecutePlans.
	DisableExecution bool
	// DisableNegativeFeedback is the explicit off switch for the paper's
	// Section IV-E cost-based error detector, which is on by default
	// (mirrors DisableExecution).
	DisableNegativeFeedback bool
	// Breaker configures the per-template circuit breaker; the zero value
	// uses the defaults documented on metrics.BreakerConfig.
	Breaker metrics.BreakerConfig
	// DisableBreaker turns the circuit breaker off: learner errors then
	// surface directly from Run instead of tripping into degraded mode.
	DisableBreaker bool
	// Faults optionally injects deterministic faults into the optimizer,
	// executor, learner and snapshot writer (chaos testing). nil disables
	// injection.
	Faults *faults.Injector
	// TraceRingSize bounds the per-template ring of recent decision traces
	// (default 64; negative disables tracing). The ring is preallocated and
	// appends are plain-memory copies, so tracing never allocates on the
	// serving path.
	TraceRingSize int
	// TraceHook, when non-nil, receives a copy of every completed Run's
	// trace record, after the run finishes and outside all locks. It runs
	// synchronously on the serving goroutine: keep it fast and do not call
	// back into the System from it.
	TraceHook obsv.TraceHook
	// FeedbackQueue bounds each template's feedback mailbox — the channel
	// between the lock-free serving path and the background apply goroutine
	// (default 256). When the mailbox is full, feedback is applied
	// synchronously on the serving goroutine (counted as deferred; never
	// dropped). Negative disables the background applier entirely: every
	// feedback point applies inline before its Run returns, restoring
	// strictly deterministic serial behaviour for experiments.
	FeedbackQueue int
	// Durability enables the write-ahead log and checkpoint layer when its
	// Dir is non-empty: Open recovers the latest checkpoint plus the WAL
	// tail, and every applied feedback point is logged before it enters the
	// synopsis. See the Durability type for the recovery contract.
	Durability Durability
	// DisableAdaptiveStats turns the adaptive statistics layer off: the
	// optimizer estimates selectivities from catalog histograms alone, with
	// no per-site correction factors learned from executed cardinalities.
	// On by default (DESIGN.md "Adaptive statistics").
	DisableAdaptiveStats bool
	// StatsWrap, when non-nil, wraps the base statistics provider before
	// the adaptive correction layer is stacked on top. Experiments and
	// tests use it to inject base-estimate error (stats.Distorted) and
	// watch the corrections repair it; production systems leave it nil.
	StatsWrap func(stats.Provider) stats.Provider
	// Candidates configures registration-time candidate plan enumeration:
	// each template's plan space is swept under perturbed selectivities and
	// the structurally distinct plans are interned into the cache, so the
	// learner routes among real alternatives from the first query. Off by
	// default.
	Candidates CandidatesOptions
	// TunableLSH configures the incremental LSH re-tune pass: per-axis
	// transform grids adapt to the empirical parameter distribution
	// harvested on the feedback path, republishing the synopsis under the
	// retuned mapping. Off by default.
	TunableLSH TunableLSHOptions
}

// CandidatesOptions configures candidate plan enumeration (see
// internal/candidates).
type CandidatesOptions struct {
	// Enable turns the subsystem on.
	Enable bool
	// Scales are the selectivity distortion factors swept around the base
	// estimate (default {0.25, 0.5, 2, 4}; 1.0 is always probed).
	Scales []float64
	// MaxPlans caps each template's candidate set (default 8).
	MaxPlans int
}

// TunableLSHOptions configures the tunable-LSH re-tune pass (see
// core.Config.RetuneEvery).
type TunableLSHOptions struct {
	// Enable turns the subsystem on.
	Enable bool
	// RetuneEvery re-tunes after this many absorbed feedback points
	// (default 200).
	RetuneEvery int
	// Reservoir is the rebuild reservoir capacity (default 256).
	Reservoir int
}

func (o Options) withDefaults() Options {
	if o.TPCH.Scale == 0 {
		o.TPCH = tpch.DefaultConfig()
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 64
	}
	if o.Online.Core.Radius == 0 {
		o.Online.Core.Radius = 0.05
	}
	if o.Online.Core.NoiseFraction == 0 {
		o.Online.Core.NoiseElimination = true
	}
	// The paper's online safety rails are on by default: cost-based
	// negative feedback and a low random audit rate. An explicit
	// DisableNegativeFeedback switch turns the detector off — setting
	// Online.NegativeFeedback=false alone cannot, since false is also the
	// zero value.
	o.Online.NegativeFeedback = !o.DisableNegativeFeedback
	if o.Online.InvocationProb == 0 {
		o.Online.InvocationProb = 0.05
	}
	o.ExecutePlans = !o.DisableExecution
	if o.TunableLSH.Enable {
		if o.TunableLSH.RetuneEvery == 0 {
			o.TunableLSH.RetuneEvery = 200
		}
		if o.TunableLSH.Reservoir == 0 {
			o.TunableLSH.Reservoir = 256
		}
	}
	if o.TraceRingSize == 0 {
		o.TraceRingSize = 64
	}
	if o.TraceRingSize < 0 {
		o.TraceRingSize = 0
	}
	return o
}

// System is an open PPC-enabled database instance. Safe for concurrent use
// by multiple goroutines; queries proceed in parallel both across templates
// and against a single hot template — the learner decision is lock-free
// (an immutable model snapshot read through an atomic pointer), and learned
// feedback is applied by a per-template background goroutine.
//
// Lock hierarchy (see DESIGN.md "Concurrency architecture"; locks are
// always acquired top to bottom, never in reverse):
//
//	regMu  > core.Online.mu > cacheMu > TemplateEstimator.mu
//
// regMu guards the template registry map; each core.Online.mu serializes
// that template's learner write path (feedback application, snapshot
// publication, drift reset, state encode/decode) — the read path takes no
// lock at all; cacheMu guards the shared plan cache and the plan-id index;
// the estimator is an internally synchronized leaf so cache eviction can
// score plans without any template lock. The circuit breaker and all health
// counters are atomics. The optimizer, executor, catalog and plan registry
// are read-only or internally synchronized and are used outside all facade
// locks.
type System struct {
	db   *tpch.Database
	cat  *catalog.Catalog
	opt  *optimizer.Optimizer
	exec *executor.Executor
	reg  *optimizer.Registry

	// stats is the adaptive statistics layer the optimizer estimates
	// through: per-(template, predicate-site) correction factors learned
	// from executed cardinalities, over the catalog's base histograms.
	// nil when Options.DisableAdaptiveStats is set.
	stats *stats.Adaptive

	// regMu guards the templates map. Per-template state has its own lock.
	regMu     sync.RWMutex
	templates map[string]*templateState

	// cacheMu guards the shared plan cache and the id -> plan index. Even
	// cache reads take the write lock when they touch recency (Get moves
	// the entry to the LRU front).
	cacheMu  sync.RWMutex
	cache    *plancache.Cache
	planByID map[int]*cachedPlan

	// loadMu guards lastLoad.
	loadMu   sync.Mutex
	lastLoad *LoadReport

	// obs is the serving path's metrics registry (DESIGN.md §9: a lock-free
	// leaf — its atomic counters may be updated under any facade lock).
	// cacheObs caches the registry's shared-cache counters for the hot path.
	obs      *obsv.Registry
	cacheObs *obsv.CacheObs

	// Durability layer (nil/zero when Options.Durability.Dir is empty).
	// wal is the shared feedback log; walObs its metrics; walPending holds
	// recovered records (feedback and retune, interleaved in log order) for
	// templates the checkpoint did not contain, keyed by template name and
	// guarded by regMu (consumed at registration).
	wal        *wal.Log
	walObs     *obsv.WALObs
	walPending map[string][]wal.Record
	// corrPending holds recovered correction records for templates the
	// checkpoint did not contain, symmetric with walPending.
	corrPending map[string][]stats.CorrRecord
	// checkpointStop/Done bracket the background checkpointer goroutine.
	checkpointStop chan struct{}
	checkpointDone chan struct{}
	checkpointOnce sync.Once

	// lineage is the leader lineage epoch (see ReplicationEpoch), minted
	// lazily on first use and persisted under the durability directory.
	lineageOnce sync.Once
	lineage     uint64
	lineageErr  error

	opts Options
}

// cachedPlan pairs a physical plan with the template state that owns it.
// The owner pointer lets the eviction scorer and the foreign-plan guard
// resolve a plan's template without the registry lock.
//
// prog and rebind are the plan's compiled forms, built once at intern time
// so a cache hit does O(params) work instead of O(plan): prog executes the
// plan through the batched columnar engine, rebind re-costs it by binding
// parameter slots in place. Either may be nil when the plan's shape is not
// compilable — the serving path then falls back to the tree-walking
// executor and the deep-copy Recost, which handle every shape.
type cachedPlan struct {
	owner  *templateState
	plan   *optimizer.Plan
	prog   *executor.CompiledPlan
	rebind *optimizer.RebindProgram
}

// applyBatchMax bounds how many queued feedback points one apply batch
// absorbs before publishing a snapshot, bounding publish latency under a
// flood.
const applyBatchMax = 64

// defaultFeedbackQueue is the mailbox capacity when Options.FeedbackQueue
// is zero.
const defaultFeedbackQueue = 256

// templateState is one template's serving state. It holds no mutex: the
// learner decision runs lock-free on the published model snapshot, the
// breaker and health counters are atomics, and feedback flows through the
// bounded mailbox to the template's background apply goroutine. The tmpl,
// env, breaker, obs and channel fields are immutable after registration.
type templateState struct {
	tmpl *optimizer.Template

	// memo is the template's optimization memo: the parameter-independent
	// part of plan enumeration, computed at registration and shared by
	// every optimizer invocation for this template (each memo is immutable
	// apart from its internal scratch pool, which is concurrency-safe).
	// The pointer is atomic because the memo embeds correction factors in
	// its join selectivities: when the adaptive statistics epoch moves past
	// the one the memo captured, memoFor swaps in a rebuilt memo.
	memo atomic.Pointer[optimizer.Memo]

	// corr is the template's adaptive correction state (nil when the layer
	// is disabled); corrLog is its WAL sink (nil without durability). Both
	// are immutable after registration.
	corr    *stats.Corrections
	corrLog *walSink

	online *core.Online
	env    *planEnv
	// breaker quarantines the learner when it misbehaves (nil when
	// disabled). While open, Run bypasses the learner entirely and invokes
	// the optimizer directly.
	breaker *metrics.Breaker
	// learnerErrs counts Step errors; degradedRuns counts runs served in
	// always-invoke-the-optimizer mode; retrainDrops counts degraded-mode
	// retraining points the learner rejected (dimensionality mismatch).
	learnerErrs  atomic.Int64
	degradedRuns atomic.Int64
	retrainDrops atomic.Int64

	// mail is the bounded feedback mailbox drained by applyLoop (nil when
	// Options.FeedbackQueue < 0 — synchronous mode). stop asks the applier
	// to drain and exit; applyDone closes when it has. closed flags the
	// mailbox as closing so Deliver falls back to synchronous apply.
	mail      chan feedbackMsg
	stop      chan struct{}
	applyDone chan struct{}
	closeOnce sync.Once
	closed    atomic.Bool

	// candMu guards the candidate plan set (sits between regMu and cacheMu
	// in the lock hierarchy: generation interns plans under cacheMu while
	// holding it). candIDs/candFPs are replaced wholesale, never mutated in
	// place; candEpoch is the correction epoch the set was generated at —
	// when the corrections move past it, the set's costs are stale and the
	// background applier regenerates it.
	candMu    sync.RWMutex
	candIDs   []int
	candFPs   []string
	candEpoch uint64

	// obs is this template's metrics (immutable pointer, set before the
	// state is published; the counters themselves are atomics and need no
	// lock).
	obs *obsv.TemplateObs
}

// feedbackMsg is one mailbox message: a feedback point, a run's attributed
// cardinality observations (when cards is non-nil), or (when flush is
// non-nil) a flush token the applier closes once everything queued before
// it has been applied.
type feedbackMsg struct {
	fb    core.Feedback
	cards *cardBuf
	flush chan struct{}
}

// cardBuf is a pooled pair of scratch slices for one run's cardinality
// harvest: the raw per-operator observations and the site-attributed
// log-q-error samples distilled from them. Pooling keeps the observed
// execution path allocation-free in steady state.
type cardBuf struct {
	cards []executor.CardObservation
	obs   []stats.Obs
}

var cardBufPool = sync.Pool{New: func() any { return &cardBuf{} }}

func releaseCards(buf *cardBuf) {
	buf.cards = buf.cards[:0]
	buf.obs = buf.obs[:0]
	cardBufPool.Put(buf)
}

// Deliver implements core.FeedbackSink: hand the point to the background
// applier, or — when the mailbox is full, closed or absent — apply it
// synchronously on the serving goroutine. Backpressure degrades latency,
// never durability: a validated point is never silently dropped.
func (st *templateState) Deliver(fb core.Feedback) {
	if st.mail != nil && !st.closed.Load() {
		select {
		case st.mail <- feedbackMsg{fb: fb}:
			st.obs.CountFeedbackEnqueued()
			return
		default:
		}
	}
	st.obs.CountFeedbackDeferred()
	t0 := time.Now()
	applied, dropped := 1, 0
	if !st.online.Apply(fb) {
		applied, dropped = 0, 1
	}
	st.obs.RecordApply(time.Since(t0), applied, dropped)
}

// applyLoop is the template's background learner: it drains the mailbox in
// batches (publishing one snapshot per batch) until stop closes, then
// drains whatever is left and exits.
func (st *templateState) applyLoop() {
	defer close(st.applyDone)
	batch := make([]core.Feedback, 0, applyBatchMax)
	flushes := make([]chan struct{}, 0, 4)
	cards := make([]*cardBuf, 0, 8)
	for {
		select {
		case msg := <-st.mail:
			batch, flushes, cards = st.collect(msg, batch[:0], flushes[:0], cards[:0])
			st.applyBatch(batch, flushes, cards)
		case <-st.stop:
			st.drainMailbox(batch[:0], flushes[:0], cards[:0])
			return
		}
	}
}

// collect gathers one batch: the triggering message plus whatever else is
// immediately available, up to applyBatchMax points.
func (st *templateState) collect(msg feedbackMsg, batch []core.Feedback, flushes []chan struct{}, cards []*cardBuf) ([]core.Feedback, []chan struct{}, []*cardBuf) {
	for {
		switch {
		case msg.flush != nil:
			flushes = append(flushes, msg.flush)
		case msg.cards != nil:
			cards = append(cards, msg.cards)
		default:
			batch = append(batch, msg.fb)
		}
		if len(batch) >= applyBatchMax {
			return batch, flushes, cards
		}
		select {
		case msg = <-st.mail:
		default:
			return batch, flushes, cards
		}
	}
}

// applyBatch applies the batch (one snapshot publication) and the queued
// cardinality observations, then releases the flush tokens — the mailbox
// is FIFO, so a token completes only after every point enqueued before it
// is in the synopsis.
func (st *templateState) applyBatch(batch []core.Feedback, flushes []chan struct{}, cards []*cardBuf) {
	if len(batch) > 0 {
		t0 := time.Now()
		applied, dropped := st.online.ApplyBatch(batch)
		st.obs.RecordApply(time.Since(t0), applied, dropped)
		// Lock-free snapshot read; the gauge tracks re-tunes the batch may
		// have triggered.
		st.obs.SetRetuneEpoch(st.online.RetuneEpoch())
	}
	for _, buf := range cards {
		st.applyCards(buf)
	}
	for _, f := range flushes {
		close(f)
	}
}

// applyCards folds one run's attributed observations into the template's
// correction state (logging each touched site's post-update state to the
// WAL before the factors publish) and returns the buffer to the pool. An
// epoch bump needs no eager notification: memoFor observes it lazily on
// the next optimizer invocation.
func (st *templateState) applyCards(buf *cardBuf) {
	if st.corr != nil && len(buf.obs) > 0 {
		var lg stats.CorrLogger
		if st.corrLog != nil {
			lg = st.corrLog
		}
		st.corr.Apply(buf.obs, lg)
		if st.corrLog != nil {
			// Group-commit the correction records; an fsync error is counted
			// by the log's own observer and retried with the next batch.
			st.corrLog.Commit() //nolint:errcheck
		}
		// An epoch bump makes the candidate set's costs stale; regenerate it
		// under the corrected estimates (refreshCandidates early-outs on a
		// matching epoch, so steady state pays one epoch comparison).
		st.env.sys.refreshCandidates(st)
	}
	releaseCards(buf)
}

// drainMailbox empties the mailbox without blocking and applies what it
// finds. Called by the exiting applier, and inline by flushers/shutdown
// once the applier is gone (concurrent inline drains are safe — ApplyBatch
// serializes on the learner lock and competing receives just split the
// backlog).
func (st *templateState) drainMailbox(batch []core.Feedback, flushes []chan struct{}, cards []*cardBuf) {
	for {
		select {
		case msg := <-st.mail:
			switch {
			case msg.flush != nil:
				flushes = append(flushes, msg.flush)
			case msg.cards != nil:
				cards = append(cards, msg.cards)
			default:
				batch = append(batch, msg.fb)
			}
		default:
			st.applyBatch(batch, flushes, cards)
			return
		}
	}
}

// deliverCards hands one run's attributed observations to the background
// applier, falling back — like Deliver — to a synchronous apply when the
// mailbox is full, closed or absent.
func (st *templateState) deliverCards(buf *cardBuf) {
	if len(buf.obs) == 0 {
		releaseCards(buf)
		return
	}
	if st.mail != nil && !st.closed.Load() {
		select {
		case st.mail <- feedbackMsg{cards: buf}:
			return
		default:
		}
	}
	st.applyCards(buf)
}

// flush blocks until every feedback point enqueued before the call has been
// applied to the synopsis, linearizing the caller with the background
// applier. Readers of learned state (stats, metrics, SaveState) flush first
// so they observe a model equivalent to all acknowledged feedback. No-op in
// synchronous mode; safe during and after shutdown (drains inline).
func (st *templateState) flush() {
	if st.mail == nil {
		return
	}
	done := make(chan struct{})
	select {
	case st.mail <- feedbackMsg{flush: done}:
	case <-st.applyDone:
		st.drainMailbox(nil, nil, nil)
		return
	}
	select {
	case <-done:
	case <-st.applyDone:
		// The applier exited between enqueue and completion; its final
		// drain may or may not have seen the token — drain inline either
		// way (closing an already-closed token cannot happen: exactly one
		// drain receives it from the FIFO mailbox).
		st.drainMailbox(nil, nil, nil)
	}
}

// shutdown stops the background applier after draining the mailbox.
// Idempotent; subsequent Delivers apply synchronously.
func (st *templateState) shutdown() {
	if st.mail == nil {
		return
	}
	st.closed.Store(true)
	st.closeOnce.Do(func() { close(st.stop) })
	<-st.applyDone
	// Recover any message that raced past the closed flag.
	st.drainMailbox(nil, nil, nil)
}

// Open generates the database, builds statistics, and initializes the
// optimizer, executor and plan cache.
func Open(opts Options) (*System, error) {
	opts = opts.withDefaults()
	db, err := tpch.Generate(opts.TPCH)
	if err != nil {
		return nil, err
	}
	cat, err := catalog.Build(db, opts.CatalogBuckets)
	if err != nil {
		return nil, err
	}
	s := &System{
		db:        db,
		cat:       cat,
		opt:       optimizer.New(db, cat),
		exec:      executor.New(db),
		reg:       optimizer.NewRegistry(),
		planByID:  make(map[int]*cachedPlan),
		templates: make(map[string]*templateState),
		obs:       obsv.NewRegistry(opts.TraceRingSize),
		opts:      opts,
	}
	s.cacheObs = s.obs.Cache()
	s.opt.SetFaults(opts.Faults)
	s.exec.SetFaults(opts.Faults)
	// Stack the statistics layers under the optimizer: catalog histograms,
	// an optional experiment wrapper, and (unless disabled) the adaptive
	// correction layer. Installed before any template registers, so every
	// memo is built through the final provider.
	var provider stats.Provider = stats.NewBase(cat)
	if opts.StatsWrap != nil {
		provider = opts.StatsWrap(provider)
	}
	if opts.DisableAdaptiveStats {
		s.opt.SetStats(provider)
	} else {
		s.stats = stats.NewAdaptive(provider, stats.CorrConfig{})
		s.opt.SetStats(s.stats)
	}
	cache, err := plancache.New(opts.CacheCapacity, s.planPrecision)
	if err != nil {
		return nil, err
	}
	s.cache = cache
	if opts.Durability.Dir != "" {
		if err := s.openDurable(); err != nil {
			if s.wal != nil {
				// The final fsync's verdict matters even on the failure
				// path: join it so a dirty close is not reported as clean.
				err = errors.Join(err, s.wal.Close())
			}
			return nil, err
		}
	}
	return s, nil
}

// MustOpen is like Open but panics on error.
func MustOpen(opts Options) *System {
	s, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// DB exposes the generated database (read-only use).
func (s *System) DB() *tpch.Database { return s.db }

// Catalog exposes the statistics catalog.
func (s *System) Catalog() *catalog.Catalog { return s.cat }

// Optimizer exposes the cost-based optimizer.
func (s *System) Optimizer() *optimizer.Optimizer { return s.opt }

// Registry exposes the plan fingerprint registry.
func (s *System) Registry() *optimizer.Registry { return s.reg }

// Register parses a SQL template and attaches an online learner to it.
// Internal panics are recovered into a typed *InternalError.
func (s *System) Register(name, sql string) (err error) {
	defer capturePanic("ppc.Register", &err)
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.registerLocked(name, sql)
}

// registerLocked implements Register; callers hold s.regMu.
func (s *System) registerLocked(name, sql string) error {
	if _, dup := s.templates[name]; dup {
		return fmt.Errorf("ppc: template %s already registered", name)
	}
	q, err := sqlparse.Parse(sql, queries.Schema)
	if err != nil {
		return err
	}
	tmpl, err := optimizer.NewTemplate(name, sql, q)
	if err != nil {
		return err
	}
	env := &planEnv{sys: s, tmpl: tmpl}
	cfg := s.opts.Online
	cfg.Core.Dims = tmpl.Degree()
	cfg.Core.OutDims = 0 // per-template default
	if s.opts.TunableLSH.Enable {
		cfg.Core.RetuneEvery = s.opts.TunableLSH.RetuneEvery
		cfg.Core.RetuneReservoir = s.opts.TunableLSH.Reservoir
	}
	online, err := core.NewOnline(cfg, env)
	if err != nil {
		return err
	}
	online.SetFaults(s.opts.Faults)
	st := &templateState{tmpl: tmpl, online: online, env: env, obs: s.obs.Template(name)}
	if s.stats != nil {
		// One correction site per WHERE predicate (1-based, as stamped by
		// NewTemplate). Attached to the learner before any state decode so
		// checkpoint restores flow into it.
		st.corr = s.stats.Register(name, len(tmpl.Query.Preds))
		online.AttachCorrections(st.corr)
	}
	if s.wal != nil {
		ws := &walSink{log: s.wal, template: name}
		online.SetWAL(ws)
		online.SetRetuneLogger(ws)
		st.corrLog = ws
	}
	memo, err := s.opt.NewMemo(tmpl.Query)
	if err != nil {
		if s.stats != nil {
			s.stats.Drop(name)
		}
		return err
	}
	st.memo.Store(memo)
	env.st = st
	if !s.opts.DisableBreaker {
		st.breaker = metrics.NewBreaker(s.opts.Breaker)
	}
	if s.opts.FeedbackQueue >= 0 {
		q := s.opts.FeedbackQueue
		if q == 0 {
			q = defaultFeedbackQueue
		}
		st.mail = make(chan feedbackMsg, q)
		st.stop = make(chan struct{})
		st.applyDone = make(chan struct{})
		go st.applyLoop()
	}
	s.templates[name] = st
	// Enumerate and intern the template's candidate plan set so predictions
	// can resolve to real cached plans from the very first Run — no cache
	// miss needed to populate the alternatives.
	s.refreshCandidates(st)
	// Replay any WAL records recovered for this template before the
	// checkpoint knew it (or because the checkpoint was corrupt) — the
	// template serves warm from its first Run.
	if s.wal != nil {
		s.replayPendingLocked(name, st)
	}
	return nil
}

// refreshCandidates (re)generates the template's candidate plan set and
// interns every survivor into the shared cache. A no-op when the subsystem
// is disabled or the set is already fresh against the correction epoch.
// Called at registration (under regMu) and from the background applier
// after a correction-epoch bump (no facade lock held); both orders respect
// the hierarchy regMu > candMu > cacheMu. A generation failure keeps the
// previous set — routing then falls back to the full optimizer until the
// next epoch bump retries.
func (s *System) refreshCandidates(st *templateState) {
	if !s.opts.Candidates.Enable {
		return
	}
	var epoch uint64
	if st.corr != nil {
		epoch = st.corr.Epoch()
	}
	st.candMu.Lock()
	defer st.candMu.Unlock()
	if st.candIDs != nil && st.candEpoch == epoch {
		return
	}
	cands, err := candidates.Generate(s.opt, st.tmpl, candidates.Config{
		Scales:   s.opts.Candidates.Scales,
		MaxPlans: s.opts.Candidates.MaxPlans,
	})
	if err != nil {
		return
	}
	ids := make([]int, 0, len(cands))
	fps := make([]string, 0, len(cands))
	for _, c := range cands {
		id, _ := s.internPlan(st, c.Plan)
		ids = append(ids, id)
		fps = append(fps, c.Plan.Fingerprint)
	}
	st.candIDs, st.candFPs, st.candEpoch = ids, fps, epoch
	st.obs.SetCandidatePlans(len(ids))
}

// candidateRoute serves a learner optimizer invocation from the template's
// interned candidate set when it is fresh: every candidate is re-costed at
// the instance in O(params) via its cached rebind program and the cheapest
// wins — the plan the full optimizer would pick whenever the set covers the
// optimum, at a fraction of the cost. Returns ok=false when candidates are
// disabled, stale against the correction epoch, or not recostable; the
// caller then falls back to full optimization.
func (s *System) candidateRoute(st *templateState, values []float64) (int, float64, bool) {
	if !s.opts.Candidates.Enable {
		return 0, 0, false
	}
	st.candMu.RLock()
	ids := st.candIDs
	epoch := st.candEpoch
	st.candMu.RUnlock()
	if len(ids) < 2 {
		return 0, 0, false
	}
	if st.corr != nil && st.corr.Epoch() != epoch {
		// The correction epoch moved past the set: its costs are stale.
		// The background applier regenerates; this run takes the full
		// optimizer.
		return 0, 0, false
	}
	s.cacheMu.RLock()
	type cand struct {
		id    int
		entry *cachedPlan
	}
	live := make([]cand, 0, len(ids))
	for _, id := range ids {
		if entry := s.planByID[id]; entry != nil && entry.owner == st && entry.rebind != nil {
			live = append(live, cand{id: id, entry: entry})
		}
	}
	s.cacheMu.RUnlock()
	bestID, bestCost, found := 0, 0.0, false
	for _, c := range live {
		cost, err := c.entry.rebind.Recost(s.opt, values)
		if err != nil {
			continue
		}
		if !found || cost < bestCost {
			bestID, bestCost, found = c.id, cost, true
		}
	}
	if !found {
		return 0, 0, false
	}
	return bestID, bestCost, true
}

// candidateHas reports whether the fingerprint is in the candidate set.
func (st *templateState) candidateHas(fp string) bool {
	st.candMu.RLock()
	defer st.candMu.RUnlock()
	for _, f := range st.candFPs {
		if f == fp {
			return true
		}
	}
	return false
}

// Close stops every template's background apply goroutine after draining
// its mailbox, then — when durability is enabled — stops the background
// checkpointer, takes a final checkpoint and closes the WAL, so a restart
// replays nothing. The System stays usable for in-memory serving
// (subsequent Runs apply feedback synchronously, without logging) and
// Close is idempotent.
func (s *System) Close() error {
	s.stopCheckpointer()
	s.regMu.RLock()
	states := make([]*templateState, 0, len(s.templates))
	for _, st := range s.templates {
		states = append(states, st)
	}
	s.regMu.RUnlock()
	for _, st := range states {
		st.shutdown()
	}
	return s.closeDurable()
}

// RegisterStandard registers the paper's Q0–Q8 templates. Templates that
// already exist are left alone rather than treated as errors, so it is safe
// to call after crash recovery restored some (or all) of them from a
// checkpoint — the idiom every durable restart uses.
func (s *System) RegisterStandard() error {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	for _, d := range queries.Defs {
		if _, dup := s.templates[d.Name]; dup {
			continue
		}
		if err := s.registerLocked(d.Name, d.SQL); err != nil {
			return err
		}
	}
	return nil
}

// lookup resolves a template name to its state under the registry lock.
func (s *System) lookup(template string) (*templateState, error) {
	s.regMu.RLock()
	st := s.templates[template]
	s.regMu.RUnlock()
	if st == nil {
		return nil, fmt.Errorf("ppc: template %s not registered", template)
	}
	return st, nil
}

// Template returns a registered template.
func (s *System) Template(name string) (*optimizer.Template, error) {
	st, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	return st.tmpl, nil
}

// TemplateNames returns the registered template names, sorted.
func (s *System) TemplateNames() []string {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	names := make([]string, 0, len(s.templates))
	for n := range s.templates {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunResult reports one query execution through the PPC pipeline.
type RunResult struct {
	// Template and Values identify the instance.
	Template string
	Values   []float64
	// Point is the instance's plan space point (predicate selectivities).
	Point []float64
	// PlanID and Fingerprint identify the executed plan.
	PlanID      int
	Fingerprint string
	// CacheHit is true when a cached plan was reused without optimizing.
	CacheHit bool
	// Predicted is true when the learner emitted a NULL-free prediction
	// (false on NULL predictions and on degraded runs, where the learner's
	// decision was bypassed or discarded).
	Predicted bool
	// Invoked is true when the optimizer ran.
	Invoked bool
	// RandomInvocation marks an optimizer invocation forced by the random
	// audit coin despite a usable prediction (Section IV-D).
	RandomInvocation bool
	// FeedbackCorrection marks a prediction rejected post-execution by the
	// cost-based negative-feedback detector (Section IV-E).
	FeedbackCorrection bool
	// DriftReset is true when drift recovery dropped this template's
	// histograms during this run.
	DriftReset bool
	// OptimizeTime is the wall time spent in the optimizer (0 on hits);
	// PredictTime is the learner's decision time.
	OptimizeTime time.Duration
	PredictTime  time.Duration
	ExecuteTime  time.Duration
	// EstimatedCost is the cost model's estimate for the executed plan at
	// this instance.
	EstimatedCost float64
	// Degraded is true when the circuit breaker bypassed the learner (or a
	// learner error forced a fallback) and the optimizer was invoked
	// directly.
	Degraded bool
	// DegradedByError marks the subset of degraded runs forced by a
	// same-run learner error (as opposed to an already-open breaker). Such
	// runs still carry the time spent in the failed learner step in
	// PredictTime.
	DegradedByError bool
	// Result holds the executed rows (nil when execution is disabled).
	Result *executor.Result
}

// Run pushes one query instance through the full PPC workflow of Figure 1.
//
// Run is fault-hardened: internal panics are recovered into a typed
// *InternalError, learner-path failures trip the template's circuit breaker
// and fall back to invoking the optimizer directly (the answer is then the
// same one a system without a plan cache would produce), and pipeline-stage
// failures surface as typed *PipelineError values. A Run therefore either
// succeeds with a correct result or returns a typed error — a misbehaving
// learner alone can never fail a query.
//
// Concurrency: the learner decision is lock-free — it predicts on the
// template's published model snapshot and queues feedback to a background
// applier — so runs proceed in parallel both across templates and against
// one hot template. Instantiation, optimization, plan rebinding and
// execution happen outside all facade locks; the shared cache is touched
// only briefly under its own lock.
func (s *System) Run(template string, values []float64) (res *RunResult, err error) {
	defer capturePanic("ppc.Run", &err)
	st, err := s.lookup(template)
	if err != nil {
		return nil, err
	}
	// Count typed-error returns for the metrics registry. (Recovered panics
	// are not counted: capturePanic assigns err after this defer has run.)
	defer func() {
		if err != nil {
			st.obs.CountRunError()
		}
	}()
	inst, err := st.tmpl.Instantiate(values)
	if err != nil {
		return nil, err
	}
	point, err := s.opt.SelectivityPoint(inst)
	if err != nil {
		return nil, err
	}
	res = &RunResult{Template: template, Values: values, Point: point}

	// The learner decides: cached plan or optimizer — unless the breaker
	// has quarantined it, in which case the optimizer is invoked directly.
	degraded := s.decide(st, res, point)
	if degraded {
		if err := s.runDegraded(st, res, inst, point); err != nil {
			return nil, err
		}
	}

	bound, prog, err := s.resolvePlan(st, res, inst, values)
	if err != nil {
		return nil, err
	}

	if s.opts.ExecutePlans {
		t1 := time.Now()
		var out *executor.Result
		var xerr error
		if prog != nil {
			// Compiled path: batched columnar execution over pooled arenas,
			// bit-identical to the tree-walking engine's output. Every
			// compiled run also harvests true per-operator cardinalities —
			// for the estimation q-error histogram always, and for the
			// correction learner when the adaptive layer is on.
			out, xerr = s.execObserved(st, prog, values)
		} else {
			out, xerr = s.exec.Run(bound)
		}
		if xerr != nil {
			return nil, &PipelineError{Stage: "execute", Template: template, Err: xerr}
		}
		res.ExecuteTime = time.Since(t1)
		res.Result = out
	}
	s.observeRun(st, res)
	return res, nil
}

// execObserved executes the compiled plan while harvesting per-operator
// observed cardinalities, attributes each unambiguous one to its template
// predicate site, records the estimation q-errors, and queues the
// attributed log-q-error samples to the template's background applier. The
// serving-goroutine cost is O(plan nodes) — vector-length reads plus a few
// histogram probes for the base estimates; the EWMA updates and WAL appends
// run on the applier.
func (s *System) execObserved(st *templateState, prog *executor.CompiledPlan, values []float64) (*executor.Result, error) {
	buf := cardBufPool.Get().(*cardBuf)
	out, cards, err := prog.ExecObserve(values, buf.cards[:0])
	buf.cards = cards
	if err != nil {
		releaseCards(buf)
		return nil, err
	}
	q := st.tmpl.Query
	for i := range buf.cards {
		c := &buf.cards[i]
		so, ok := s.opt.AttributeCard(q, c.Node, values, c.Rows, c.LeftRows, c.RightRows, c.Lo, c.Hi)
		if !ok {
			continue
		}
		// The exported q-error histogram tracks the estimate the optimizer
		// actually serves — base estimate times the learned factor — so it
		// converges toward 1 as corrections absorb the base estimator's bias
		// (and measures the raw base error when the adaptive layer is off).
		// The learner itself always consumes the base-estimate error: the
		// factor corrects the base, so feeding it corrected errors would make
		// the EWMA chase its own output.
		est := so.Est
		if st.corr != nil {
			est = st.corr.CorrectSel(so.Site, so.Est)
		}
		st.obs.RecordQError(stats.QError(est, so.Obs))
		if st.corr != nil {
			buf.obs = append(buf.obs, stats.Obs{Site: so.Site, LogQ: stats.LogQ(so.Est, so.Obs)})
		}
	}
	st.deliverCards(buf)
	return out, nil
}

// observeRun feeds one completed run into the metrics registry, the
// template's trace ring, and the optional user trace hook. It runs after
// the run has finished, outside all locks; the record is built on the
// stack and copied, so the observability layer adds no allocations to the
// serving path.
func (s *System) observeRun(st *templateState, res *RunResult) {
	var rec obsv.TraceRecord
	rec.Template = res.Template
	rec.PlanID = res.PlanID
	rec.Fingerprint = res.Fingerprint
	rec.Predicted = res.Predicted
	rec.CacheHit = res.CacheHit
	rec.Invoked = res.Invoked
	rec.RandomInvocation = res.RandomInvocation
	rec.FeedbackCorrection = res.FeedbackCorrection
	rec.DriftReset = res.DriftReset
	rec.Degraded = res.Degraded
	rec.DegradedByError = res.DegradedByError
	rec.Executed = res.Result != nil
	rec.PredictNs = res.PredictTime.Nanoseconds()
	rec.OptimizeNs = res.OptimizeTime.Nanoseconds()
	rec.ExecuteNs = res.ExecuteTime.Nanoseconds()
	rec.EstimatedCost = res.EstimatedCost
	rec.SetValues(res.Values)
	rec.SetPoint(res.Point)
	st.obs.Observe(&rec)
	if s.opts.TraceHook != nil {
		s.opts.TraceHook(rec)
	}
}

// decide runs the learner protocol — lock-free on the template's published
// model snapshot — and reports whether the run must fall back to degraded
// (always-invoke-the-optimizer) mode. A learner error is absorbed here: it
// trips the breaker and degrades this run instead of failing the query.
func (s *System) decide(st *templateState, res *RunResult, point []float64) (degraded bool) {
	if st.breaker != nil {
		prev := st.breaker.State()
		allowed := st.breaker.Allow()
		st.obs.BreakerTransition(prev, st.breaker.State())
		if !allowed {
			return true
		}
	}
	// Each run times its own optimizer work through a private wrapper, so
	// concurrent runs on one template cannot cross-contaminate accounting.
	env := &runEnv{env: st.env}
	t0 := time.Now()
	decision, lerr := st.online.StepConcurrent(point, env, st)
	decide := time.Since(t0)
	if lerr != nil {
		// Learner-path failure: count it, trip the breaker toward
		// degraded mode, and fall back to direct optimization for this
		// run. The learner's state was not corrupted by the failed step.
		// The time spent in the failed step must not vanish from the
		// run's accounting: record it as decide time (any successfully
		// timed optimizer work inside the step stays in OptimizeTime,
		// which runDegraded extends) and mark the run degraded-by-error
		// so traces and metrics can tell this fallback from an
		// already-open breaker.
		st.learnerErrs.Add(1)
		st.obs.CountLearnerError()
		res.PredictTime = decide - env.optTime
		if res.PredictTime < 0 {
			res.PredictTime = 0
		}
		res.OptimizeTime = env.optTime
		res.DegradedByError = true
		if st.breaker != nil {
			prev := st.breaker.State()
			st.breaker.RecordFailure()
			st.obs.BreakerTransition(prev, st.breaker.State())
		}
		return true
	}
	if st.breaker != nil {
		prev := st.breaker.State()
		st.breaker.RecordSuccess()
		st.obs.BreakerTransition(prev, st.breaker.State())
		if prec, ok := st.online.Estimator().Precision(); ok {
			prev = st.breaker.State()
			if st.breaker.ObservePrecision(prec, st.online.Estimator().SampleCount()) {
				// Precision collapse tripped the breaker (the CAS admits
				// exactly one winner under races): drop the stale window
				// so recovery is judged on fresh evidence once probes
				// resume.
				st.online.Estimator().Reset()
			}
			st.obs.BreakerTransition(prev, st.breaker.State())
		}
	}
	res.PlanID = decision.Plan
	res.CacheHit = decision.CacheHit
	res.Predicted = decision.Predicted
	res.Invoked = decision.Invoked
	res.RandomInvocation = decision.RandomInvocation
	res.FeedbackCorrection = decision.FeedbackCorrection
	res.DriftReset = decision.Reset
	res.PredictTime = decide - env.optTime
	if res.PredictTime < 0 {
		res.PredictTime = 0
	}
	res.OptimizeTime = env.optTime
	return false
}

// runDegraded serves a run in always-invoke-the-optimizer mode: the same
// plan (and answer) a system without a plan cache would produce. The
// optimizer call happens outside all locks; the retraining point flows
// through the same feedback pipeline as healthy runs.
func (s *System) runDegraded(st *templateState, res *RunResult, inst optimizer.Instance, point []float64) error {
	res.Degraded = true
	t1 := time.Now()
	plan, oerr := s.opt.OptimizeMemo(s.memoFor(st), inst.Values)
	if oerr != nil {
		return &PipelineError{Stage: "optimize", Template: res.Template, Err: oerr}
	}
	res.OptimizeTime += time.Since(t1)
	res.Invoked = true
	res.CacheHit = false
	res.PlanID, _ = s.internPlan(st, plan)
	st.degradedRuns.Add(1)
	// The validated label still feeds the quarantined learner so it
	// retrains while degraded. A rejected point (dimensionality mismatch)
	// is counted rather than silently dropped.
	fb, lerr := st.online.ValidatedFeedback(point, res.PlanID, plan.Cost)
	if lerr != nil {
		st.retrainDrops.Add(1)
		st.obs.CountRetrainDrop()
		return nil
	}
	st.Deliver(fb)
	return nil
}

// memoFor returns the template's current memo, rebuilding it first when
// the adaptive statistics epoch has moved past the one the memo captured —
// the memo's interned join selectivities embed correction factors, so an
// epoch bump makes its costs stale (plans it enumerates stay valid). The
// epoch comparison is two atomic loads on the hot path; concurrent rebuilds
// are benign (both build from the current or a newer epoch, last store
// wins). A rebuild failure keeps serving the stale memo: lagging costs beat
// a failed query.
func (s *System) memoFor(st *templateState) *optimizer.Memo {
	m := st.memo.Load()
	if st.corr == nil || m.StatsEpoch == st.corr.Epoch() {
		return m
	}
	fresh, err := s.opt.NewMemo(st.tmpl.Query)
	if err != nil {
		return m
	}
	st.memo.Store(fresh)
	st.obs.CountMemoInvalidation()
	return fresh
}

// resolvePlan fetches the plan to execute: on a hit, rebind the cached
// plan's compiled program in O(params) (falling back to the deep-copy
// Recost when the plan never compiled); on a miss (or a foreign/unusable
// tree) optimize afresh through the template's memo. Rebinding and
// optimization run outside all locks. The returned program, when non-nil,
// is the compiled form of the returned plan and is what Run executes; the
// bound tree is only executed when prog is nil.
func (s *System) resolvePlan(st *templateState, res *RunResult, inst optimizer.Instance, values []float64) (*optimizer.Plan, *executor.CompiledPlan, error) {
	s.cacheMu.RLock()
	entry, ok := s.planByID[res.PlanID]
	s.cacheMu.RUnlock()
	// A plan belonging to another template (a garbled prediction that
	// happens to resolve) must never execute here — treat it as a miss.
	if ok && entry.owner != st {
		ok = false
	}
	var bound *optimizer.Plan
	var prog *executor.CompiledPlan
	if ok {
		if entry.rebind != nil && entry.prog != nil {
			// Fast hit: bind the parameter slots and re-cost in place — no
			// tree copy. The cached (template-bound) tree stands in for the
			// bound plan; it is never executed, entry.prog is.
			cost, rerr := entry.rebind.Recost(s.opt, values)
			if rerr != nil {
				ok = false
			} else {
				bound = entry.plan
				prog = entry.prog
				res.EstimatedCost = cost
			}
		} else {
			rb, rerr := s.opt.Recost(st.tmpl.Query, entry.plan, values)
			if rerr != nil {
				// The cached tree is unusable for this template: treat it as
				// a miss and re-optimize rather than failing the query.
				ok = false
			} else {
				bound = rb
				res.EstimatedCost = rb.Cost
			}
		}
	}
	if ok {
		res.Fingerprint = entry.plan.Fingerprint
		// Refresh the executed plan's recency. Touch (rather than Get)
		// leaves an id a concurrent insertion has just evicted alone
		// instead of recording a spurious cache miss.
		s.cacheMu.Lock()
		s.cache.Touch(res.PlanID)
		s.cacheMu.Unlock()
		s.cacheObs.CountHit()
	} else {
		// The predicted plan's tree was evicted from the cache (or was
		// unusable): optimize afresh — a cache miss despite a possibly
		// correct prediction.
		t1 := time.Now()
		plan, oerr := s.opt.OptimizeMemo(s.memoFor(st), inst.Values)
		if oerr != nil {
			return nil, nil, &PipelineError{Stage: "optimize", Template: res.Template, Err: oerr}
		}
		res.OptimizeTime += time.Since(t1)
		res.Invoked = true
		res.CacheHit = false
		var fresh *cachedPlan
		res.PlanID, fresh = s.internPlan(st, plan)
		// OptimizeMemo binds the plan at these values already.
		bound = plan
		prog = fresh.prog
		res.Fingerprint = plan.Fingerprint
		res.EstimatedCost = plan.Cost
		// No recency refresh here: internPlan just Put the plan, which
		// already made it the cache's most recent entry.
		s.cacheObs.CountMiss()
	}
	return bound, prog, nil
}

// internPlan registers a fresh plan in the registry, index and cache, and
// returns its dense id plus the cache entry. The registry is internally
// synchronized; the index and cache update happens under the cache lock.
// When the insertion evicts another plan, only the cache slot and index
// entry are reclaimed — the tree itself stays alive for learners still
// referencing its id, and Run re-optimizes if the plan is predicted again.
//
// An id already cached for this template keeps its existing entry (the
// trees are fingerprint-identical), so re-interning a plan on every audit
// or degraded run never recompiles it. Fresh entries are compiled — into a
// batched executor program and a rebind program — outside cacheMu; a plan
// shape the compilers cannot express leaves the fields nil and serves
// through the legacy paths.
func (s *System) internPlan(st *templateState, plan *optimizer.Plan) (int, *cachedPlan) {
	id := s.reg.ID(plan.Fingerprint)
	s.cacheMu.RLock()
	entry, ok := s.planByID[id]
	s.cacheMu.RUnlock()
	if !ok || entry.owner != st {
		entry = &cachedPlan{owner: st, plan: plan}
		if prog, err := s.exec.Compile(plan, st.tmpl.Query); err == nil {
			entry.prog = prog
		}
		if rb, err := s.opt.CompileRebind(st.tmpl.Query, plan); err == nil {
			entry.rebind = rb
		}
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	s.planByID[id] = entry
	s.cacheObs.CountPut()
	if evicted := s.cache.Put(id, entry.plan); evicted >= 0 && evicted != id {
		delete(s.planByID, evicted)
		s.cacheObs.CountEviction()
	}
	return id, entry
}

// Stats summarizes a template's learner state.
//
// Precision and Recall are the Section IV-E sliding-window estimates.
// When the window holds no (NULL-free) predictions the estimate does not
// exist: the value is 0 and PrecisionKnown/RecallKnown are false. The
// facade deliberately never substitutes the vacuous-precision 1.0 that
// metrics.Counter.Precision uses for the paper's plots — an operator
// reading "1.0" for a template that has never predicted would conclude
// the opposite of the truth. MetricsSnapshot follows the same convention.
type Stats struct {
	Template        string
	Degree          int
	SamplesAbsorbed int
	SynopsisBytes   int
	Precision       float64
	PrecisionKnown  bool
	Recall          float64
	RecallKnown     bool
	Resets          int
	// Validated and SelfLabeled count insertions by provenance (lifetime,
	// checkpoint-restored). Crash-recovery audits compare them against the
	// acknowledged feedback history.
	Validated   int
	SelfLabeled int
	// AppliedSeq is the WAL sequence number of the newest feedback point in
	// the synopsis (0 when durability is disabled or nothing was logged).
	AppliedSeq uint64
	// CorrectionEpoch and CorrectionSites report the adaptive statistics
	// layer's state for this template: the correction epoch and the number
	// of predicate sites whose factor is past cold start. Both zero when
	// the layer is disabled.
	CorrectionEpoch uint64
	CorrectionSites int
}

// TemplateStats reports the online learner's state for one template. It
// flushes the template's feedback mailbox first, so the reported synopsis
// reflects every point already acknowledged by Run.
func (s *System) TemplateStats(template string) (out Stats, err error) {
	defer capturePanic("ppc.TemplateStats", &err)
	st, err := s.lookup(template)
	if err != nil {
		return Stats{}, err
	}
	st.flush()
	model := st.online.Model()
	est := st.online.Estimator()
	out = Stats{
		Template:        template,
		Degree:          st.tmpl.Degree(),
		SamplesAbsorbed: model.TotalPoints(),
		SynopsisBytes:   model.MemoryBytes(),
		Resets:          st.online.Resets(),
		Validated:       st.online.Validated(),
		SelfLabeled:     st.online.SelfLabeled(),
		AppliedSeq:      st.online.AppliedSeq(),
	}
	out.Precision, out.PrecisionKnown = est.Precision()
	out.Recall, out.RecallKnown = est.Recall()
	if st.corr != nil {
		out.CorrectionEpoch = st.corr.Epoch()
		out.CorrectionSites = st.corr.ActiveSites()
	}
	return out, nil
}

// Health summarizes the fault posture of one template's serving path.
type Health struct {
	Template string
	// Breaker is the circuit breaker's state and counters. Zero-valued
	// (State Closed, no trips) when the breaker is disabled.
	Breaker metrics.BreakerSnapshot
	// BreakerEnabled reports whether a breaker guards this template.
	BreakerEnabled bool
	// LearnerErrors counts Step failures on the learner path.
	LearnerErrors int
	// DegradedRuns counts Runs served by invoking the optimizer directly
	// (breaker open, or a same-run fallback after a learner error).
	DegradedRuns int
	// RetrainDrops counts degraded-mode retraining points the learner
	// rejected (dimensionality mismatch) instead of absorbing.
	RetrainDrops int
}

// TemplateHealth reports breaker state and degraded-mode counters for one
// template.
func (s *System) TemplateHealth(template string) (h Health, err error) {
	defer capturePanic("ppc.TemplateHealth", &err)
	st, err := s.lookup(template)
	if err != nil {
		return Health{}, err
	}
	h = Health{
		Template:      template,
		LearnerErrors: int(st.learnerErrs.Load()),
		DegradedRuns:  int(st.degradedRuns.Load()),
		RetrainDrops:  int(st.retrainDrops.Load()),
	}
	if st.breaker != nil {
		h.BreakerEnabled = true
		h.Breaker = st.breaker.Snapshot()
	}
	return h, nil
}

// LearnerMetrics is the learner-internal slice of a template's metrics
// snapshot: lifetime step counters, synopsis size, and the Section IV-E
// sliding-window estimates. Estimates that do not exist (empty window) are
// reported as value 0 with the matching Known flag false — never as a
// vacuous 1.0 (see Stats).
type LearnerMetrics struct {
	// Steps counts learner protocol steps; NullPredictions the subset that
	// emitted no plan. Both are lifetime totals, unlike the bounded
	// estimator windows below.
	Steps           int `json:"steps"`
	NullPredictions int `json:"null_predictions"`
	// SamplesAbsorbed and SynopsisBytes describe the histogram synopsis.
	SamplesAbsorbed int `json:"samples_absorbed"`
	SynopsisBytes   int `json:"synopsis_bytes"`
	// Validated and SelfLabeled count insertions by provenance; Resets
	// counts drift recoveries.
	Validated   int `json:"validated_points"`
	SelfLabeled int `json:"self_labeled_points"`
	Resets      int `json:"drift_resets"`
	// SnapshotPublishes counts immutable model publications;
	// StaleFeedbackDrops counts feedback discarded because a drift reset
	// intervened between its creation and its application.
	SnapshotPublishes  int64 `json:"snapshot_publishes"`
	StaleFeedbackDrops int64 `json:"stale_feedback_drops"`
	// WindowSamples is the number of predictions in the sliding window.
	WindowSamples  int     `json:"window_samples"`
	Precision      float64 `json:"precision"`
	PrecisionKnown bool    `json:"precision_known"`
	Recall         float64 `json:"recall"`
	RecallKnown    bool    `json:"recall_known"`
	Beta           float64 `json:"beta"`
	BetaKnown      bool    `json:"beta_known"`
}

// TemplateMetrics is one template's slice of a MetricsSnapshot: the
// registry's counters and latency histograms, the learner's state, and the
// circuit breaker's counters.
type TemplateMetrics struct {
	obsv.TemplateSnapshot
	Degree         int                     `json:"degree"`
	Learner        LearnerMetrics          `json:"learner"`
	BreakerEnabled bool                    `json:"breaker_enabled"`
	Breaker        metrics.BreakerSnapshot `json:"breaker"`
}

// CacheMetrics is the shared plan cache's slice of a MetricsSnapshot.
type CacheMetrics struct {
	Len      int `json:"len"`
	Capacity int `json:"capacity"`
	obsv.CacheSnapshot
}

// MetricsSnapshotSchema identifies the MetricsSnapshot JSON format; bump
// on incompatible changes.
const MetricsSnapshotSchema = "ppc-metrics/v1"

// MetricsSnapshot is a stable, JSON-serializable copy of the System's
// serving-path metrics: per-template counters and latency histograms,
// learner and breaker state, and the shared plan cache's counters.
type MetricsSnapshot struct {
	Schema    string            `json:"schema"`
	Templates []TemplateMetrics `json:"templates"`
	Cache     CacheMetrics      `json:"cache"`
	// WAL carries the durability layer's counters; nil (omitted) when
	// durability is disabled. Additive — the schema version is unchanged.
	WAL *obsv.WALSnapshot `json:"wal,omitempty"`
	// Replication carries the replication layer's counters (leader
	// shipping gauges, or a replica's lag and stream counters); nil when
	// the process neither ships nor consumes state. Additive.
	Replication *obsv.ReplSnapshot `json:"replication,omitempty"`
}

// MetricsSnapshot assembles the current metrics across all templates. Each
// template's feedback mailbox is flushed (and its depth gauge sampled just
// before the flush) so the learner numbers reflect every point already
// acknowledged by Run; all counters are atomics read without any lock, so a
// snapshot never stalls the serving path.
func (s *System) MetricsSnapshot() (snap MetricsSnapshot, err error) {
	defer capturePanic("ppc.MetricsSnapshot", &err)
	snap.Schema = MetricsSnapshotSchema
	s.regMu.RLock()
	states := make(map[string]*templateState, len(s.templates))
	names := make([]string, 0, len(s.templates))
	for n, st := range s.templates {
		states[n] = st
		names = append(names, n)
	}
	s.regMu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		st := states[name]
		st.obs.SetQueueDepth(len(st.mail))
		st.flush()
		tm := TemplateMetrics{
			TemplateSnapshot: st.obs.Snapshot(),
			Degree:           st.tmpl.Degree(),
		}
		est := st.online.Estimator()
		model := st.online.Model()
		tm.Learner = LearnerMetrics{
			Steps:              st.online.Steps(),
			NullPredictions:    st.online.NullPredictions(),
			SamplesAbsorbed:    model.TotalPoints(),
			SynopsisBytes:      model.MemoryBytes(),
			Validated:          st.online.Validated(),
			SelfLabeled:        st.online.SelfLabeled(),
			Resets:             st.online.Resets(),
			SnapshotPublishes:  st.online.Publishes(),
			StaleFeedbackDrops: st.online.StaleFeedbackDrops(),
			WindowSamples:      est.SampleCount(),
		}
		tm.Learner.Precision, tm.Learner.PrecisionKnown = est.Precision()
		tm.Learner.Recall, tm.Learner.RecallKnown = est.Recall()
		tm.Learner.Beta, tm.Learner.BetaKnown = est.Beta()
		if st.breaker != nil {
			tm.BreakerEnabled = true
			tm.Breaker = st.breaker.Snapshot()
		}
		snap.Templates = append(snap.Templates, tm)
	}
	s.cacheMu.RLock()
	snap.Cache.Len = s.cache.Len()
	snap.Cache.Capacity = s.cache.Capacity()
	s.cacheMu.RUnlock()
	snap.Cache.CacheSnapshot = s.cacheObs.Snapshot()
	snap.WAL = s.WALMetrics()
	snap.Replication = s.ReplMetrics()
	return snap, nil
}

// TemplateTrace returns the template's most recent decision traces, oldest
// first (nil when tracing is disabled via Options.TraceRingSize < 0).
func (s *System) TemplateTrace(template string) ([]obsv.TraceRecord, error) {
	st, err := s.lookup(template)
	if err != nil {
		return nil, err
	}
	return st.obs.Trace(), nil
}

// CacheLen returns the number of plans currently cached.
func (s *System) CacheLen() int {
	s.cacheMu.RLock()
	defer s.cacheMu.RUnlock()
	return s.cache.Len()
}

// CacheEvictions returns the number of evictions performed so far.
func (s *System) CacheEvictions() int {
	s.cacheMu.RLock()
	defer s.cacheMu.RUnlock()
	return s.cache.Evictions()
}

// planPrecision adapts the per-plan sliding-window precision estimates to
// the cache eviction policy. It is invoked by the cache's eviction scan,
// i.e. with cacheMu already held; it follows the plan's owner pointer and
// queries only the internally synchronized estimator, so it never needs the
// registry or a template lock (which would invert the lock hierarchy).
func (s *System) planPrecision(planID int) (float64, bool) {
	entry, ok := s.planByID[planID]
	if !ok {
		return 0, false
	}
	return entry.owner.online.Estimator().PlanPrecision(planID)
}

// planEnv adapts the optimizer to the learner's Environment interface for
// one template. It is stateless per call and shared by all of the
// template's concurrent runs; each run wraps it in a private runEnv to time
// its own optimizer work. Its methods take cacheMu for the shared cache,
// consistent with the lock hierarchy.
type planEnv struct {
	sys  *System
	tmpl *optimizer.Template
	st   *templateState
}

// Optimize implements core.Environment: invoke the real optimizer at plan
// space point x — through the template's memo — intern the plan, and cache
// it. With candidate enumeration on, a fresh candidate set answers instead:
// re-costing the interned alternatives at the instance is O(candidates ×
// params), picks the same plan the optimizer would whenever the set covers
// the optimum, and never waits on a cache miss to surface it.
func (e *planEnv) Optimize(x []float64) (int, float64, error) {
	inst, err := e.sys.opt.InstanceAt(e.tmpl, x)
	if err != nil {
		return 0, 0, err
	}
	if id, cost, ok := e.sys.candidateRoute(e.st, inst.Values); ok {
		e.st.obs.CountCandidateRouted()
		return id, cost, nil
	}
	plan, err := e.sys.opt.OptimizeMemo(e.sys.memoFor(e.st), inst.Values)
	if err != nil {
		return 0, 0, err
	}
	id, _ := e.sys.internPlan(e.st, plan)
	if e.st.candidateHas(plan.Fingerprint) {
		e.st.obs.CountCandidateKept()
	}
	return id, plan.Cost, nil
}

// runEnv wraps a template's planEnv for one Run, accumulating the wall time
// of successful optimizer calls so decide can split the step's latency into
// predict and optimize components without shared mutable state.
type runEnv struct {
	env     *planEnv
	optTime time.Duration
}

func (e *runEnv) Optimize(x []float64) (int, float64, error) {
	t0 := time.Now()
	plan, cost, err := e.env.Optimize(x)
	if err != nil {
		return plan, cost, err
	}
	e.optTime += time.Since(t0)
	return plan, cost, nil
}

func (e *runEnv) ExecuteCost(x []float64, planID int) (float64, error) {
	return e.env.ExecuteCost(x, planID)
}

// ExecuteCost implements core.Environment: the execution cost of a given
// (possibly stale) plan at x, via plan rebinding and recosting.
func (e *planEnv) ExecuteCost(x []float64, planID int) (float64, error) {
	e.sys.cacheMu.RLock()
	entry, ok := e.sys.planByID[planID]
	e.sys.cacheMu.RUnlock()
	if !ok || entry.owner != e.st {
		// Plan fell out of the cache, or belongs to another template (a
		// garbled prediction); behave like a severe cost surprise so the
		// learner re-optimizes.
		return 0, nil
	}
	inst, err := e.sys.opt.InstanceAt(e.tmpl, x)
	if err != nil {
		return 0, err
	}
	// Every cache-hit learner step lands here: prefer the O(params) rebind
	// program over the deep-copy Recost.
	if entry.rebind != nil {
		if cost, err := entry.rebind.Recost(e.sys.opt, inst.Values); err == nil {
			return cost, nil
		}
	}
	re, err := e.sys.opt.Recost(e.tmpl.Query, entry.plan, inst.Values)
	if err != nil {
		return 0, err
	}
	return re.Cost, nil
}
