package ppc

// Integration tests for the observability layer: the metrics snapshot must
// agree exactly with the RunResult ground truth the same workload produced,
// and the latency accounting on each RunResult must obey its invariants.

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obsv"
	"repro/internal/queries"
	"repro/internal/tpch"
)

// sqlFor returns the SQL of one standard query template.
func sqlFor(t *testing.T, name string) string {
	t.Helper()
	for _, d := range queries.Defs {
		if d.Name == name {
			return d.SQL
		}
	}
	t.Fatalf("no standard query %s", name)
	return ""
}

// runTally accumulates RunResult ground truth for comparison against a
// CounterSnapshot.
type runTally struct {
	runs, cacheHits, predicted, nulls       uint64
	invoked, random, feedback, drift        uint64
	degraded, degradedByError               uint64
	predictObs, executed                    uint64
	last                                    *RunResult
}

func (c *runTally) add(res *RunResult) {
	c.runs++
	if res.CacheHit {
		c.cacheHits++
	}
	if res.Predicted {
		c.predicted++
	} else if !res.Degraded {
		c.nulls++
	}
	if res.Invoked {
		c.invoked++
	}
	if res.RandomInvocation {
		c.random++
	}
	if res.FeedbackCorrection {
		c.feedback++
	}
	if res.DriftReset {
		c.drift++
	}
	if res.Degraded {
		c.degraded++
	}
	if res.DegradedByError {
		c.degradedByError++
	}
	if !res.Degraded || res.DegradedByError {
		c.predictObs++
	}
	if res.Result != nil {
		c.executed++
	}
	c.last = res
}

// drive runs n instances of the template in a drifting selectivity
// neighborhood and tallies the results.
func drive(t *testing.T, sys *System, name string, n int, seed int64) *runTally {
	t.Helper()
	tmpl, err := sys.Template(name)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tally := &runTally{}
	for i := 0; i < n; i++ {
		point := make([]float64, tmpl.Degree())
		center := 0.2 + 0.5*float64(i)/float64(n)
		for d := range point {
			point[d] = center + rng.Float64()*0.05
		}
		inst, err := sys.Optimizer().InstanceAt(tmpl, point)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(name, inst.Values)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		tally.add(res)
	}
	return tally
}

func TestMetricsSnapshotMatchesRunResults(t *testing.T) {
	sys := openSmall(t)
	for _, name := range []string{"Q0", "Q1"} {
		if err := sys.Register(name, sqlFor(t, name)); err != nil {
			t.Fatal(err)
		}
	}
	tallies := map[string]*runTally{
		"Q0": drive(t, sys, "Q0", 200, 7),
		"Q1": drive(t, sys, "Q1", 200, 8),
	}

	snap, err := sys.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != MetricsSnapshotSchema {
		t.Fatalf("schema = %q, want %q", snap.Schema, MetricsSnapshotSchema)
	}
	if len(snap.Templates) != 2 {
		t.Fatalf("templates in snapshot = %d, want 2", len(snap.Templates))
	}

	var totalRuns uint64
	for _, tm := range snap.Templates {
		tally := tallies[tm.Template]
		if tally == nil {
			t.Fatalf("unexpected template %q in snapshot", tm.Template)
		}
		totalRuns += tally.runs
		c := tm.Counters
		checks := []struct {
			name string
			got  uint64
			want uint64
		}{
			{"runs", c.Runs, tally.runs},
			{"run_errors", c.RunErrors, 0},
			{"cache_hits", c.CacheHits, tally.cacheHits},
			{"predicted", c.Predicted, tally.predicted},
			{"null_predictions", c.NullPredictions, tally.nulls},
			{"optimizer_invocations", c.OptimizerInvocations, tally.invoked},
			{"random_invocations", c.RandomInvocations, tally.random},
			{"feedback_corrections", c.FeedbackCorrections, tally.feedback},
			{"drift_resets", c.DriftResets, tally.drift},
			{"degraded_runs", c.DegradedRuns, tally.degraded},
			{"degraded_by_error", c.DegradedByError, tally.degradedByError},
			{"predict_latency.count", tm.PredictLatency.Count, tally.predictObs},
			{"optimize_latency.count", tm.OptimizeLatency.Count, tally.invoked},
			{"execute_latency.count", tm.ExecuteLatency.Count, tally.executed},
			{"degraded_latency.count", tm.DegradedLatency.Count, tally.degraded},
		}
		for _, ck := range checks {
			if ck.got != ck.want {
				t.Errorf("%s: %s = %d, want %d", tm.Template, ck.name, ck.got, ck.want)
			}
		}
		// The workload exercises the interesting paths; a snapshot full of
		// zeros would vacuously pass the equalities above.
		if tally.cacheHits == 0 || tally.invoked == 0 {
			t.Errorf("%s: degenerate workload (hits=%d invoked=%d)", tm.Template, tally.cacheHits, tally.invoked)
		}
		// Learner lifetime counters: every non-degraded run is one learner
		// step, and the NULL split must match the registry's.
		if got, want := uint64(tm.Learner.Steps), tally.runs-tally.degraded+tally.degradedByError; got != want {
			t.Errorf("%s: learner steps = %d, want %d", tm.Template, got, want)
		}
		if got := uint64(tm.Learner.NullPredictions); got != tally.nulls {
			t.Errorf("%s: learner null_predictions = %d, want %d", tm.Template, got, tally.nulls)
		}
	}

	// Every successful Run resolves its plan exactly once: serving-level
	// cache hits and misses must partition the runs.
	if got := snap.Cache.Hits + snap.Cache.Misses; got != totalRuns {
		t.Errorf("cache hits+misses = %d, want %d", got, totalRuns)
	}
	if got, want := snap.Cache.Evictions, uint64(sys.CacheEvictions()); got != want {
		t.Errorf("cache evictions = %d, want %d", got, want)
	}
	if snap.Cache.Capacity == 0 || snap.Cache.Len == 0 {
		t.Errorf("cache occupancy not reported: %+v", snap.Cache)
	}

	// The snapshot must round-trip through JSON (it is the /metrics payload).
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != snap.Schema || len(back.Templates) != len(snap.Templates) {
		t.Errorf("JSON round-trip lost data: %s", data)
	}

	// Trace ring: default size 64, oldest-first, sequence numbers dense and
	// ending at the last run.
	for name, tally := range tallies {
		trace, err := sys.TemplateTrace(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) != 64 {
			t.Fatalf("%s: trace length = %d, want 64", name, len(trace))
		}
		for i := 1; i < len(trace); i++ {
			if trace[i].Seq != trace[i-1].Seq+1 {
				t.Fatalf("%s: non-consecutive seq at %d: %d after %d", name, i, trace[i].Seq, trace[i-1].Seq)
			}
		}
		last := trace[len(trace)-1]
		res := tally.last
		if last.Seq != tally.runs {
			t.Errorf("%s: last trace seq = %d, want %d", name, last.Seq, tally.runs)
		}
		if last.PlanID != res.PlanID || last.CacheHit != res.CacheHit ||
			last.Invoked != res.Invoked || last.Predicted != res.Predicted ||
			last.Fingerprint != res.Fingerprint {
			t.Errorf("%s: last trace %+v does not match last result %+v", name, last, res)
		}
		if last.PredictNs != res.PredictTime.Nanoseconds() ||
			last.OptimizeNs != res.OptimizeTime.Nanoseconds() ||
			last.ExecuteNs != res.ExecuteTime.Nanoseconds() {
			t.Errorf("%s: last trace timings do not match result", name)
		}
		vals := last.ValuesSlice()
		if len(vals) != len(res.Values) {
			t.Fatalf("%s: trace values length %d, want %d", name, len(vals), len(res.Values))
		}
		for i := range vals {
			if vals[i] != res.Values[i] {
				t.Errorf("%s: trace values %v != result values %v", name, vals, res.Values)
				break
			}
		}
	}
}

func TestRunLatencyAccounting(t *testing.T) {
	sys := openSmall(t)
	if err := sys.Register("Q1", sqlFor(t, "Q1")); err != nil {
		t.Fatal(err)
	}
	tmpl, _ := sys.Template("Q1")
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 120; i++ {
		point := []float64{0.3 + rng.Float64()*0.1, 0.3 + rng.Float64()*0.1}
		inst, err := sys.Optimizer().InstanceAt(tmpl, point)
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		res, err := sys.Run("Q1", inst.Values)
		wall := time.Since(t0)
		if err != nil {
			t.Fatal(err)
		}
		accounted := res.PredictTime + res.OptimizeTime + res.ExecuteTime
		if accounted > wall {
			t.Fatalf("run %d: accounted %v exceeds wall %v (%+v)", i, accounted, wall, res)
		}
		if res.PredictTime < 0 || res.OptimizeTime < 0 || res.ExecuteTime < 0 {
			t.Fatalf("run %d: negative stage time (%+v)", i, res)
		}
		if res.Invoked && res.OptimizeTime <= 0 {
			t.Fatalf("run %d: optimizer invoked but OptimizeTime = %v", i, res.OptimizeTime)
		}
		if !res.Invoked && res.OptimizeTime != 0 {
			t.Fatalf("run %d: optimizer not invoked but OptimizeTime = %v", i, res.OptimizeTime)
		}
		if res.Result != nil && res.ExecuteTime <= 0 {
			t.Fatalf("run %d: executed but ExecuteTime = %v", i, res.ExecuteTime)
		}
	}
}

// TestErrorDegradeAccounting pins the decide() error-branch fix: a run
// degraded by a same-run learner error must still carry the time spent in
// the failed learner step, and the registry's learner-error counters must
// agree with TemplateHealth.
func TestErrorDegradeAccounting(t *testing.T) {
	inj := faults.New(42).Enable(faults.OptimizerError, 0.5)
	sys, err := Open(Options{
		TPCH:           tpch.Config{Scale: 1000, Seed: 5},
		Online:         onlineForTest(),
		DisableBreaker: true,
		Faults:         inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register("Q1", sqlFor(t, "Q1")); err != nil {
		t.Fatal(err)
	}
	tmpl, _ := sys.Template("Q1")
	rng := rand.New(rand.NewSource(9))

	var byError, failed uint64
	sawSpentTime := false
	for i := 0; i < 80; i++ {
		point := []float64{0.3 + rng.Float64()*0.2, 0.3 + rng.Float64()*0.2}
		inst, ierr := sys.Optimizer().InstanceAt(tmpl, point)
		if ierr != nil {
			t.Fatal(ierr)
		}
		res, rerr := sys.Run("Q1", inst.Values)
		if rerr != nil {
			// The degraded fallback's own optimizer call hit the fault.
			failed++
			continue
		}
		if res.DegradedByError {
			byError++
			if !res.Degraded {
				t.Fatalf("run %d: DegradedByError without Degraded", i)
			}
			if !res.Invoked || res.OptimizeTime <= 0 {
				t.Fatalf("run %d: degraded run must invoke the optimizer (%+v)", i, res)
			}
			if res.PredictTime > 0 {
				sawSpentTime = true
			}
		}
	}
	if byError == 0 {
		t.Fatal("fault injection produced no degraded-by-error runs")
	}
	if !sawSpentTime {
		t.Error("no degraded-by-error run carried its failed learner step's time in PredictTime")
	}

	h, err := sys.TemplateHealth("Q1")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sys.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	c := snap.Templates[0].Counters
	if got, want := c.LearnerErrors, uint64(h.LearnerErrors); got != want {
		t.Errorf("snapshot learner_errors = %d, health says %d", got, want)
	}
	if c.LearnerErrors < c.DegradedByError {
		t.Errorf("learner_errors %d < degraded_by_error %d", c.LearnerErrors, c.DegradedByError)
	}
	if got := c.DegradedByError; got != byError {
		t.Errorf("snapshot degraded_by_error = %d, ground truth %d", got, byError)
	}
	if got := c.RunErrors; got != failed {
		t.Errorf("snapshot run_errors = %d, ground truth %d", got, failed)
	}
}

func TestTraceHookAndRingOptions(t *testing.T) {
	var hooked int
	var lastSeq uint64
	sys, err := Open(Options{
		TPCH:          tpch.Config{Scale: 1000, Seed: 5},
		Online:        onlineForTest(),
		TraceRingSize: 8,
		TraceHook: func(rec obsv.TraceRecord) {
			hooked++
			lastSeq = rec.Seq
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register("Q1", sqlFor(t, "Q1")); err != nil {
		t.Fatal(err)
	}
	tmpl, _ := sys.Template("Q1")
	rng := rand.New(rand.NewSource(4))
	const runs = 20
	for i := 0; i < runs; i++ {
		point := []float64{0.4 + rng.Float64()*0.05, 0.4 + rng.Float64()*0.05}
		inst, err := sys.Optimizer().InstanceAt(tmpl, point)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run("Q1", inst.Values); err != nil {
			t.Fatal(err)
		}
	}
	if hooked != runs {
		t.Errorf("trace hook fired %d times, want %d", hooked, runs)
	}
	if lastSeq != runs {
		t.Errorf("last hook seq = %d, want %d", lastSeq, runs)
	}
	trace, err := sys.TemplateTrace("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 8 {
		t.Errorf("custom ring size: trace length = %d, want 8", len(trace))
	}
}

func TestTraceDisabled(t *testing.T) {
	sys, err := Open(Options{
		TPCH:          tpch.Config{Scale: 1000, Seed: 5},
		Online:        onlineForTest(),
		TraceRingSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Register("Q0", sqlFor(t, "Q0")); err != nil {
		t.Fatal(err)
	}
	tmpl, _ := sys.Template("Q0")
	point := make([]float64, tmpl.Degree())
	for i := range point {
		point[i] = 0.5
	}
	inst, err := sys.Optimizer().InstanceAt(tmpl, point)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run("Q0", inst.Values); err != nil {
		t.Fatal(err)
	}
	trace, err := sys.TemplateTrace("Q0")
	if err != nil {
		t.Fatal(err)
	}
	if trace != nil {
		t.Errorf("tracing disabled but trace = %v", trace)
	}
	// Counters still work with tracing off.
	snap, err := sys.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Templates[0].Counters.Runs != 1 {
		t.Errorf("runs = %d, want 1", snap.Templates[0].Counters.Runs)
	}
}
