package ppc

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (each regenerates its experiment at a reduced workload size;
// run cmd/ppcbench for full-size tables), plus microbenchmarks of the
// pipeline's hot operations (optimization, prediction, insertion, plan
// rebinding, execution).
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig08 -benchtime=1x   # one full regeneration

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/experiments"
	"repro/internal/optimizer"
	"repro/internal/workload"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// env returns the shared benchmark substrate (TPC-H SF1/1000).
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv = experiments.MustNewEnv(1000, 2012)
	})
	return benchEnv
}

// benchFrac keeps per-iteration experiment cost low; cmd/ppcbench runs the
// full-size configurations.
const benchFrac = 0.08

// runExperiment benchmarks one registry entry end to end.
func runExperiment(b *testing.B, id string) {
	e := env(b)
	runner, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(e, benchFrac); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure ----------------------------------

func BenchmarkFig02PlanSpace(b *testing.B)            { runExperiment(b, "fig2") }
func BenchmarkFig03ClusteringComparison(b *testing.B) { runExperiment(b, "fig3") }
func BenchmarkTab01SpaceTime(b *testing.B)            { runExperiment(b, "tab1") }
func BenchmarkFig08ApproxPrecision(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig09Histograms(b *testing.B)           { runExperiment(b, "fig9") }
func BenchmarkTab02ConfidenceSweep(b *testing.B)      { runExperiment(b, "tab2") }
func BenchmarkFig10aTransforms(b *testing.B)          { runExperiment(b, "fig10a") }
func BenchmarkFig10bBuckets(b *testing.B)             { runExperiment(b, "fig10b") }
func BenchmarkFig11Online(b *testing.B)               { runExperiment(b, "fig11") }
func BenchmarkFig12Ablations(b *testing.B)            { runExperiment(b, "fig12") }
func BenchmarkFig13Runtime(b *testing.B)              { runExperiment(b, "fig13") }
func BenchmarkFig14Predictability(b *testing.B)       { runExperiment(b, "fig14") }
func BenchmarkTab03Templates(b *testing.B)            { runExperiment(b, "tab3") }
func BenchmarkDriftDetection(b *testing.B)            { runExperiment(b, "drift") }

// --- Microbenchmarks: Table I's complexity claims in the small -------------

// BenchmarkOptimizeQ1 measures the cost a cache hit avoids on the paper's
// running example (two-way join).
func BenchmarkOptimizeQ1(b *testing.B) { benchOptimize(b, "Q1") }

// BenchmarkOptimizeQ8 measures it on the most expensive template (five-way
// join, six parameters).
func BenchmarkOptimizeQ8(b *testing.B) { benchOptimize(b, "Q8") }

func benchOptimize(b *testing.B, name string) {
	e := env(b)
	tmpl := e.Templates[name]
	points := workload.Uniform(tmpl.Degree(), 256, 7)
	insts := make([]optimizer.Instance, len(points))
	for i, p := range points {
		inst, err := e.Opt.InstanceAt(tmpl, p)
		if err != nil {
			b.Fatal(err)
		}
		insts[i] = inst
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Opt.OptimizeInstance(insts[i%len(insts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// trainedPredictors builds each algorithm on the same Q1 sample set.
func trainedPredictors(b *testing.B, n int) (bl *cluster.Density, nv *core.Naive, al *core.ApproxLSH, hist *core.ApproxLSHHist, tests [][]float64) {
	e := env(b)
	tmpl := e.Templates["Q1"]
	oracle := experiments.NewOracle(e, tmpl)
	samples, err := oracle.SamplePlanSpace(n, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Dims: tmpl.Degree(), Radius: 0.05, Gamma: 0.7, NoiseElimination: true, Seed: 5}
	nv = core.MustNewNaive(cfg)
	al = core.MustNewApproxLSH(cfg)
	hist = core.MustNewApproxLSHHist(cfg)
	for _, s := range samples {
		nv.Insert(s)
		al.Insert(s)
		hist.Insert(s)
	}
	bl = cluster.NewDensity(samples, 0.05, 0.7)
	tests = workload.Uniform(tmpl.Degree(), 512, 11)
	return
}

// BenchmarkPredictBaseline is O(|X|) per prediction (Table I row 1).
func BenchmarkPredictBaseline(b *testing.B) {
	bl, _, _, _, tests := trainedPredictors(b, 3200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Predict(tests[i%len(tests)])
	}
}

// BenchmarkPredictNaive is O(1) per prediction (Table I row 2).
func BenchmarkPredictNaive(b *testing.B) {
	_, nv, _, _, tests := trainedPredictors(b, 3200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nv.Predict(tests[i%len(tests)])
	}
}

// BenchmarkPredictApproxLSH is O(t) per prediction (Table I row 3).
func BenchmarkPredictApproxLSH(b *testing.B) {
	_, _, al, _, tests := trainedPredictors(b, 3200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Predict(tests[i%len(tests)])
	}
}

// BenchmarkRecost measures plan rebinding — what a cache hit pays instead
// of full optimization.
func BenchmarkRecost(b *testing.B) {
	e := env(b)
	tmpl := e.Templates["Q8"]
	inst, err := e.Opt.InstanceAt(tmpl, []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := e.Opt.OptimizeInstance(inst)
	if err != nil {
		b.Fatal(err)
	}
	other, err := e.Opt.InstanceAt(tmpl, []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Opt.Recost(tmpl.Query, plan, other.Values); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteQ1 measures plan execution on the in-memory engine.
func BenchmarkExecuteQ1(b *testing.B) {
	e := env(b)
	tmpl := e.Templates["Q1"]
	inst, err := e.Opt.InstanceAt(tmpl, []float64{0.3, 0.3})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := e.Opt.OptimizeInstance(inst)
	if err != nil {
		b.Fatal(err)
	}
	exec := executor.New(e.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// The serving-path benchmarks (PredictApproxLSHHist, InsertApproxLSHHist,
// EndToEndRun, RunMixedSerial, RunParallel) live in internal/benchsuite and
// are exposed as go-test benchmarks by bench_suite_test.go, so the same
// bodies feed both `go test -bench` and the machine-readable pipeline
// (cmd/ppcbench -bench).
