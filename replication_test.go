package ppc

// End-to-end replication tests against a real System: the leader facade
// (replication.go) feeding internal/replica over TCP. The process-boundary
// variant (SIGKILL the leader binary under load) lives in
// cmd/ppcreplica/main_test.go; these cover the in-process contracts —
// lineage stability, snapshot equivalence, convergence after a leader
// restart on the same durability directory.

import (
	"testing"
	"time"

	"repro/internal/netproto"
	"repro/internal/replica"
)

// The leader System is the ship source the replica server runs against.
var _ replica.ShipSource = (*System)(nil)

func fastServe(t *testing.T, sys *System) *replica.Server {
	t.Helper()
	srv, err := replica.Serve(replica.Config{
		Addr:         "127.0.0.1:0",
		Source:       sys,
		Heartbeat:    50 * time.Millisecond,
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return srv
}

func fastReplica(t *testing.T, addr string) *replica.State {
	t.Helper()
	rep, err := replica.Start(replica.Options{
		LeaderAddr:  addr,
		AckInterval: 50 * time.Millisecond,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() }) //nolint:errcheck
	return rep.State()
}

func waitReplica(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// quiesce flushes every template's applier so the learner state, the WAL
// and the stats all agree before a comparison.
func quiesce(t *testing.T, sys *System) {
	t.Helper()
	for _, name := range sys.TemplateNames() {
		st, err := sys.lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		st.flush()
	}
}

func TestReplicationLineageStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	sys := openDurable(t, dir, nil)
	epoch1, err := sys.ReplicationEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if epoch1 == 0 {
		t.Fatal("zero lineage epoch")
	}
	runDurableWorkload(t, sys, 40, 3)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Same directory, same lineage: replicas from before the restart can
	// resume instead of being fenced out.
	sys2 := openDurable(t, dir, nil)
	epoch2, err := sys2.ReplicationEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if epoch2 != epoch1 {
		t.Errorf("lineage changed across a same-dir restart: %x -> %x", epoch1, epoch2)
	}

	// A fresh directory is a new lineage.
	other := openDurable(t, t.TempDir(), nil)
	epoch3, err := other.ReplicationEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if epoch3 == epoch1 {
		t.Error("independent durability directories share a lineage epoch")
	}

	// Without durability there is no lineage to ship.
	cold := openSmall(t)
	defer cold.Close() //nolint:errcheck
	if _, err := cold.ReplicationEpoch(); err == nil {
		t.Error("lineage epoch without a WAL")
	}
}

// TestLeaderReplicaEquivalenceEndToEnd is the acceptance criterion against
// the real System: a converged replica answers the wire predict RPC
// bit-identically to the leader at every probed point.
func TestLeaderReplicaEquivalenceEndToEnd(t *testing.T) {
	sys := openDurable(t, t.TempDir(), nil)
	defer sys.Close() //nolint:errcheck
	runDurableWorkload(t, sys, 250, 17)

	srv := fastServe(t, sys)
	st := fastReplica(t, srv.Addr())
	waitReplica(t, "snapshot install", st.Ready)

	runDurableWorkload(t, sys, 150, 19) // live tail while connected
	quiesce(t, sys)
	waitReplica(t, "catch-up", func() bool {
		return st.ReceivedSeq() == sys.WALLastSeq()
	})

	tmpl, err := sys.Template("Q1")
	if err != nil {
		t.Fatal(err)
	}
	grid := probeGrid(tmpl.Degree(), 12)
	hits := 0
	for i, point := range grid {
		req := netproto.PredictRequest{ID: uint64(i), Template: "Q1", Point: point}
		l, r := sys.PredictRPC(req), st.PredictRPC(req)
		if l.Status != r.Status || l.Plan != r.Plan || l.Confidence != r.Confidence ||
			l.Cost != r.Cost || l.CostKnown != r.CostKnown ||
			l.Fingerprint != r.Fingerprint || l.Epoch != r.Epoch {
			t.Fatalf("diverged at %v:\nleader  %+v\nreplica %+v", point, l, r)
		}
		if l.Status == netproto.StatusOK {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no OK predictions across the probe grid; equivalence vacuous")
	}
	if lag := st.Obs().LagRecords(); lag != 0 {
		t.Errorf("converged replica reports lag %d", lag)
	}
}

// TestLeaderRestartReplicaConvergence restarts the leader on the same
// durability directory while the replica keeps serving, then checks the
// replica reconnects into the same lineage and converges with no
// acknowledged feedback lost (the recovered leader replays its WAL; the
// replica's per-template watermarks absorb the overlap).
func TestLeaderRestartReplicaConvergence(t *testing.T) {
	dir := t.TempDir()
	sys := openDurable(t, dir, nil)
	tmpl, err := sys.Template("Q1")
	if err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, tmpl.Degree())
	for i := range probe {
		probe[i] = 0.3
	}
	runDurableWorkload(t, sys, 200, 23)
	quiesce(t, sys)
	ackedSeq := sys.WALLastSeq()

	srv := fastServe(t, sys)
	addr := srv.Addr()
	st := fastReplica(t, addr)
	waitReplica(t, "install", func() bool {
		return st.Ready() && st.ReceivedSeq() >= ackedSeq
	})
	epoch := st.Epoch()

	// Leader goes away. The replica keeps answering from installed state.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	res := st.PredictRPC(netproto.PredictRequest{Template: "Q1", Point: probe})
	if res.Status == netproto.StatusNotReady {
		t.Fatal("replica stopped serving while the leader was down")
	}

	// Leader restarts on the same directory — same lineage, recovered WAL —
	// and keeps taking writes.
	sys2 := openDurable(t, dir, nil)
	defer sys2.Close() //nolint:errcheck
	runDurableWorkload(t, sys2, 120, 29)
	quiesce(t, sys2)

	srv2, err := replica.Serve(replica.Config{
		Addr:         addr,
		Source:       sys2,
		Heartbeat:    50 * time.Millisecond,
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close() //nolint:errcheck

	waitReplica(t, "post-restart convergence", func() bool {
		return st.ReceivedSeq() == sys2.WALLastSeq()
	})
	if st.Epoch() != epoch {
		t.Errorf("lineage changed across a same-dir leader restart: %x -> %x", epoch, st.Epoch())
	}
	if st.Obs().Snapshot().FenceDiscards != 0 {
		t.Error("same-lineage restart discarded replica state")
	}
	// Nothing acknowledged before the restart may be missing: the replica's
	// position covers the pre-restart tail and beyond.
	if st.ReceivedSeq() < ackedSeq {
		t.Errorf("replica at seq %d, below the pre-restart acknowledged tail %d", st.ReceivedSeq(), ackedSeq)
	}
}

// TestLeaderReplicaCorrectionParity: the adaptive-statistics state ships
// with the learner — the snapshot carries the corrections section inside
// the EncodeState bytes and the stream carries kind-2 WAL records — so a
// converged replica holds correction factors identical to the leader's.
func TestLeaderReplicaCorrectionParity(t *testing.T) {
	sys := openDurable(t, t.TempDir(), nil)
	defer sys.Close() //nolint:errcheck
	runDurableWorkload(t, sys, 150, 17)

	srv := fastServe(t, sys)
	st := fastReplica(t, srv.Addr())
	waitReplica(t, "snapshot install", st.Ready)

	// Live corrections accumulate while the replica tails the stream.
	runDurableWorkload(t, sys, 100, 19)
	quiesce(t, sys)
	waitReplica(t, "catch-up", func() bool {
		return st.ReceivedSeq() == sys.WALLastSeq()
	})

	lst, err := sys.lookup("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if lst.corr == nil {
		t.Fatal("leader has no correction state; parity is vacuous")
	}
	lEpoch, lSeq, lSites := lst.corr.State()
	if lSeq == 0 {
		t.Fatal("leader logged no corrections; parity is vacuous")
	}
	rc := st.CorrectionState("Q1")
	if rc == nil {
		t.Fatal("replica shipped no correction state")
	}
	rEpoch, rSeq, rSites := rc.State()
	if rEpoch != lEpoch || rSeq != lSeq {
		t.Errorf("replica correction (epoch %d, seq %d), leader (%d, %d)", rEpoch, rSeq, lEpoch, lSeq)
	}
	for i := range lSites {
		if rSites[i] != lSites[i] {
			t.Errorf("site %d: replica %+v, leader %+v", i+1, rSites[i], lSites[i])
		}
	}
	// The published factors — what an epoch's predictions cost through —
	// are bit-identical per site.
	for s := 1; s <= lst.corr.NSites(); s++ {
		if rc.Factor(s) != lst.corr.Factor(s) {
			t.Errorf("site %d factor: replica %v, leader %v", s, rc.Factor(s), lst.corr.Factor(s))
		}
	}
}

func TestReplicationMetricsSurface(t *testing.T) {
	sys := openDurable(t, t.TempDir(), nil)
	defer sys.Close() //nolint:errcheck
	snap, err := sys.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Replication == nil {
		t.Fatal("durable system snapshot has no replication section")
	}

	cold := openSmall(t)
	defer cold.Close() //nolint:errcheck
	coldSnap, err := cold.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if coldSnap.Replication != nil {
		t.Error("cold system reports replication metrics")
	}
}

// probeGrid returns dims-dimensional probe points: an n-per-axis grid over
// the first two coordinates (any further coordinates pinned to 0.3, so the
// grid stays quadratic regardless of template degree).
func probeGrid(dims, n int) [][]float64 {
	var out [][]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := make([]float64, dims)
			for k := range p {
				p[k] = 0.3
			}
			p[0] = float64(i) / float64(n-1)
			if dims > 1 {
				p[1] = float64(j) / float64(n-1)
			}
			out = append(out, p)
			if dims == 1 {
				break
			}
		}
	}
	return out
}
