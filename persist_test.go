package ppc

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/queries"
	"repro/internal/tpch"
)

func warmSystem(t *testing.T, seed int64) (*System, [][]float64) {
	t.Helper()
	sys, err := Open(Options{
		TPCH:   tpch.Config{Scale: 2000, Seed: 5},
		Online: onlineForTest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Q0", "Q1"} {
		var def string
		for _, d := range queries.Defs {
			if d.Name == name {
				def = d.SQL
			}
		}
		if err := sys.Register(name, def); err != nil {
			t.Fatal(err)
		}
	}
	tmpl, _ := sys.Template("Q1")
	rng := rand.New(rand.NewSource(seed))
	var values [][]float64
	for i := 0; i < 120; i++ {
		point := []float64{0.25 + rng.Float64()*0.1, 0.25 + rng.Float64()*0.1}
		inst, err := sys.Optimizer().InstanceAt(tmpl, point)
		if err != nil {
			t.Fatal(err)
		}
		values = append(values, inst.Values)
		if _, err := sys.Run("Q1", inst.Values); err != nil {
			t.Fatal(err)
		}
	}
	return sys, values
}

func TestSaveLoadStateRoundTrip(t *testing.T) {
	warm, values := warmSystem(t, 1)
	var buf bytes.Buffer
	if err := warm.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	warmStats, _ := warm.TemplateStats("Q1")
	if warmStats.SamplesAbsorbed == 0 {
		t.Fatal("warm system absorbed nothing; test is vacuous")
	}

	cold, err := Open(Options{
		TPCH:   tpch.Config{Scale: 2000, Seed: 5},
		Online: onlineForTest(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Templates and learned samples must be back.
	restored, err := cold.TemplateStats("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if restored.SamplesAbsorbed != warmStats.SamplesAbsorbed {
		t.Errorf("restored %d samples, want %d", restored.SamplesAbsorbed, warmStats.SamplesAbsorbed)
	}
	if cold.CacheLen() == 0 {
		t.Error("restored cache is empty")
	}
	// The restored system must serve the warmed neighborhood from cache
	// immediately — no re-learning phase.
	hits := 0
	for _, vals := range values[:40] {
		res, err := cold.Run("Q1", vals)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit {
			hits++
		}
	}
	if hits < 25 {
		t.Errorf("only %d/40 cache hits after restore; warm state lost", hits)
	}
}

func TestLoadStateValidation(t *testing.T) {
	warm, _ := warmSystem(t, 2)
	var buf bytes.Buffer
	if err := warm.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong database configuration must be rejected.
	other, err := Open(Options{TPCH: tpch.Config{Scale: 1000, Seed: 5}, Online: onlineForTest()})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("LoadState accepted state from a different database")
	}
	// Non-fresh system must be rejected.
	used, _ := warmSystem(t, 3)
	if err := used.LoadState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("LoadState accepted a non-fresh system")
	}
	// Garbage must not be an error: the System degrades to a cold learner
	// and reports the corruption.
	fresh, err := Open(Options{TPCH: tpch.Config{Scale: 2000, Seed: 5}, Online: onlineForTest()})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadState(bytes.NewReader([]byte("not a state"))); err != nil {
		t.Errorf("LoadState on garbage must degrade, not fail: %v", err)
	}
	rep := fresh.LoadStateReport()
	if rep == nil || !rep.Corrupt {
		t.Errorf("corruption not reported: %+v", rep)
	}
}

func TestRestoredPredictionsIdentical(t *testing.T) {
	// Predictions of a restored learner must be bit-identical to the
	// original's (the transforms regenerate from the persisted seed).
	warm, _ := warmSystem(t, 4)
	var buf bytes.Buffer
	if err := warm.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	cold, err := Open(Options{TPCH: tpch.Config{Scale: 2000, Seed: 5}, Online: onlineForTest()})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	tmpl, _ := warm.Template("Q1")
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		point := []float64{rng.Float64(), rng.Float64()}
		inst, err := warm.Optimizer().InstanceAt(tmpl, point)
		if err != nil {
			t.Fatal(err)
		}
		a, err := warm.Run("Q1", inst.Values)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cold.Run("Q1", inst.Values)
		if err != nil {
			t.Fatal(err)
		}
		// Both systems evolve as they run; compare the executed results,
		// which must agree regardless of plan choice.
		if len(a.Result.Rows) != len(b.Result.Rows) {
			t.Fatalf("row count diverged at %d: %d vs %d", i, len(a.Result.Rows), len(b.Result.Rows))
		}
		if len(a.Result.Rows) > 0 && a.Result.Rows[0][1].Num != b.Result.Rows[0][1].Num {
			t.Fatalf("results diverged at %d", i)
		}
	}
}
