package ppc

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/lsh"
	"repro/internal/obsv"
	"repro/internal/stats"
	"repro/internal/wal"
)

// Durability configures the crash-recovery layer: a write-ahead log of
// feedback records under Dir plus periodic checkpoints that compact it.
// The zero value (empty Dir) disables durability entirely — the System
// behaves exactly as before, learned state living only in memory until an
// explicit SaveState.
//
// Layout under Dir:
//
//	checkpoint.ppc   the latest SaveState snapshot (atomically replaced)
//	wal/wal-*.log    feedback records newer than the checkpoint
//
// Recovery at Open: load the checkpoint (degrading to cold learners on
// corruption, as LoadState always has), then replay only the WAL records
// past each learner's applied-sequence watermark. Records for templates the
// checkpoint does not contain are held aside and replayed when the
// template is registered — so a corrupt checkpoint with an intact WAL
// still recovers every logged point once the application re-registers its
// templates.
type Durability struct {
	// Dir is the durability directory; empty disables the layer.
	Dir string
	// Sync is the WAL fsync policy (default wal.SyncAlways).
	Sync wal.SyncPolicy
	// SyncInterval is the fsync cadence under wal.SyncInterval (default
	// 100ms).
	SyncInterval time.Duration
	// SegmentBytes rotates WAL segments past this size (default 4 MiB).
	SegmentBytes int64
	// CheckpointInterval is the background checkpointer's cadence (default
	// 1 minute). The checkpointer calls Checkpoint: SaveState to a temp
	// file, atomic rename, then WAL compaction.
	CheckpointInterval time.Duration
	// DisableCheckpointer turns the background checkpointer off; the
	// application drives Checkpoint itself (Close still takes a final one).
	DisableCheckpointer bool
}

// defaultCheckpointInterval is the checkpointer cadence when unset.
const defaultCheckpointInterval = time.Minute

// checkpointName is the snapshot file under the durability directory.
const checkpointName = "checkpoint.ppc"

// walSink adapts one template's view of the shared WAL to the learner's
// FeedbackLogger interface. LogFeedback runs under the learner write lock
// (core.Online.applyLocked); the log serializes on its own mutex below it.
type walSink struct {
	log      *wal.Log
	template string
}

// LogFeedback appends one feedback point under the template's name.
func (w *walSink) LogFeedback(fb *core.Feedback) (uint64, error) {
	rec := wal.Record{
		Epoch:       fb.Epoch,
		Template:    w.template,
		Plan:        int64(fb.Plan),
		Cost:        fb.Cost,
		SelfLabeled: fb.SelfLabeled,
		Point:       fb.Point,
	}
	return w.log.Append(&rec)
}

// Commit is the per-batch group-commit barrier.
func (w *walSink) Commit() error { return w.log.Commit() }

// LogRetune appends one tunable-LSH retune record (core.RetuneLogger). Runs
// under the learner write lock, before the retune applies, so recovery and
// replicas see the record ordered exactly against the feedback stream — the
// order that makes the rebuilt synopsis bit-identical. The record carries
// the absolute warp grid, making replay deterministic and idempotent.
func (w *walSink) LogRetune(epoch uint64, warps [][]*lsh.Warp) (uint64, error) {
	t, s, k, flat := core.FlattenWarps(warps)
	rec := wal.Record{
		Kind:        wal.RecordRetune,
		Template:    w.template,
		RetuneEpoch: epoch,
		WarpT:       uint16(t),
		WarpS:       uint16(s),
		WarpK:       uint16(k),
		Warps:       flat,
	}
	return w.log.Append(&rec)
}

// LogCorrection appends one correction-state record (stats.CorrLogger).
// Runs under Corrections.mu — a leaf below every other lock — while the log
// serializes on its own mutex. Records carry absolute post-update state, so
// replay is idempotent by construction.
func (w *walSink) LogCorrection(rec *stats.CorrRecord) (uint64, error) {
	r := wal.Record{
		Kind:      wal.RecordCorrection,
		Template:  w.template,
		CorrEpoch: rec.Epoch,
		Site:      uint32(rec.Site),
		LogC:      rec.LogC,
		N:         rec.N,
		Ref:       rec.Ref,
	}
	return w.log.Append(&r)
}

// openDurable runs the recovery sequence for a freshly opened System:
// open (and repair) the WAL, load the latest checkpoint, replay the WAL
// tail, stash records for unregistered templates, and start the background
// checkpointer. Called from Open before the System is published, so no
// concurrent Runs exist yet.
func (s *System) openDurable() error {
	d := s.opts.Durability
	t0 := time.Now()
	s.walObs = s.obs.WAL()
	log, recov, err := wal.Open(wal.Options{
		Dir:          filepath.Join(d.Dir, "wal"),
		Sync:         d.Sync,
		SyncInterval: d.SyncInterval,
		SegmentBytes: d.SegmentBytes,
		Faults:       s.opts.Faults,
		Observer:     s.walObs,
	})
	if err != nil {
		return err
	}
	s.wal = log
	s.walPending = make(map[string][]wal.Record)
	s.corrPending = make(map[string][]stats.CorrRecord)

	// Load the latest checkpoint. A missing file is a first boot; an
	// unreadable or corrupt one degrades to cold learners (LoadState's
	// contract) and the WAL tail below recovers what it can.
	ckPath := filepath.Join(d.Dir, checkpointName)
	var report *LoadReport
	if f, oerr := os.Open(ckPath); oerr == nil {
		lerr := s.LoadState(f)
		f.Close() //nolint:errcheck
		if lerr != nil {
			return lerr // non-degradable: wrong database, non-fresh System
		}
		report = s.LoadStateReport()
	} else {
		report = &LoadReport{}
		if !os.IsNotExist(oerr) {
			report.Corrupt = true
			report.Reason = fmt.Sprintf("checkpoint: %v", oerr)
		}
		s.loadMu.Lock()
		s.lastLoad = report
		s.loadMu.Unlock()
	}
	report.WALEnabled = true
	report.WALSegments = recov.Segments
	report.WALTornBytes = recov.TornBytes
	report.WALTornSegment = recov.TornSegment
	report.WALQuarantined = recov.QuarantinedSegments
	if recov.Corrupt {
		report.Corrupt = true
		if report.Reason == "" {
			report.Reason = "wal: " + recov.Reason
		}
	}

	// Replay the tail. Records are globally ordered by sequence number;
	// grouping by template preserves each learner's relative order, which
	// is the only order that matters (learners share no state). Feedback and
	// retune records stay interleaved within a template's stream — a retune
	// record is a barrier, and replayRecords flushes the feedback batch at
	// each one so the rebuilt synopsis matches the leader's bit for bit.
	// Correction records ride the same log under their own kind and replay
	// into the template's correction state rather than its learner
	// (order-independent: they carry absolute post-update state).
	byTemplate := make(map[string][]wal.Record)
	corrByTemplate := make(map[string][]stats.CorrRecord)
	for _, r := range recov.Records {
		if r.Kind == wal.RecordCorrection {
			corrByTemplate[r.Template] = append(corrByTemplate[r.Template], stats.CorrRecord{
				Seq:   r.Seq,
				Epoch: r.CorrEpoch,
				Site:  int(r.Site),
				LogC:  r.LogC,
				N:     r.N,
				Ref:   r.Ref,
			})
			continue
		}
		byTemplate[r.Template] = append(byTemplate[r.Template], r)
	}
	s.regMu.RLock()
	states := make(map[string]*templateState, len(s.templates))
	for n, st := range s.templates {
		states[n] = st
	}
	s.regMu.RUnlock()
	for name, recs := range byTemplate {
		st := states[name]
		if st == nil {
			// The checkpoint does not know this template (first boot, or a
			// corrupt checkpoint). Hold the records until Register.
			s.walPending[name] = recs
			report.WALPending += len(recs)
			continue
		}
		applied, skipped, stale := replayRecords(st.online, recs)
		st.obs.SetRetuneEpoch(st.online.RetuneEpoch())
		report.WALReplayed += applied
		report.WALSkipped += skipped
		report.WALStale += stale
	}
	for name, recs := range corrByTemplate {
		st := states[name]
		if st == nil || st.online.Corrections() == nil {
			s.corrPending[name] = recs
			report.WALPending += len(recs)
			continue
		}
		corr := st.online.Corrections()
		for _, rec := range recs {
			if corr.Replay(rec) {
				report.WALReplayed++
			} else {
				report.WALSkipped++
			}
		}
	}
	// Every learner — checkpoint-restored or registered later — gets its
	// WAL sink in registerLocked (s.wal is already set when LoadState
	// re-registers the saved templates above).
	report.RecoveryDuration = time.Since(t0)

	if !d.DisableCheckpointer {
		every := d.CheckpointInterval
		if every <= 0 {
			every = defaultCheckpointInterval
		}
		s.checkpointStop = make(chan struct{})
		s.checkpointDone = make(chan struct{})
		go s.checkpointLoop(every)
	}
	return nil
}

// replayRecords replays one template's ordered WAL record stream — feedback
// and retune records interleaved in log order — into its learner. Feedback
// accumulates into batches flushed at each retune record, preserving the
// leader's insert/retune interleaving (the retune rebuilds the synopsis
// from its reservoir, so a point applied on the wrong side of it would land
// in the wrong mapping). Malformed retune payloads are counted stale.
func replayRecords(o *core.Online, recs []wal.Record) (applied, skipped, stale int) {
	batch := make([]core.Feedback, 0, len(recs))
	flush := func() {
		if len(batch) == 0 {
			return
		}
		a, sk, stl := o.ReplayBatch(batch)
		applied += a
		skipped += sk
		stale += stl
		batch = batch[:0]
	}
	for _, r := range recs {
		if r.Kind == wal.RecordRetune {
			flush()
			warps, err := core.WarpsFromFlat(int(r.WarpT), int(r.WarpS), int(r.WarpK), r.Warps)
			if err != nil {
				stale++
				continue
			}
			if o.ReplayRetune(r.Seq, r.RetuneEpoch, warps) {
				applied++
			} else {
				skipped++
			}
			continue
		}
		batch = append(batch, core.Feedback{
			Point:       r.Point,
			Plan:        int(r.Plan),
			Cost:        r.Cost,
			SelfLabeled: r.SelfLabeled,
			Epoch:       r.Epoch,
			Seq:         r.Seq,
		})
	}
	flush()
	return applied, skipped, stale
}

// replayPendingLocked applies WAL records held for a template that was not
// in the checkpoint. Feedback records whose dimensionality disagrees with
// the registered template are counted stale rather than applied (the
// template changed shape between crash and restart). Callers hold s.regMu.
func (s *System) replayPendingLocked(name string, st *templateState) {
	recs := s.walPending[name]
	if len(recs) == 0 && len(s.corrPending[name]) == 0 {
		return
	}
	t0 := time.Now()
	delete(s.walPending, name)
	dims := st.tmpl.Degree()
	kept := recs[:0]
	mismatched := 0
	for _, r := range recs {
		if r.Kind != wal.RecordRetune && len(r.Point) != dims {
			mismatched++
			continue
		}
		kept = append(kept, r)
	}
	applied, skipped, stale := replayRecords(st.online, kept)
	st.obs.SetRetuneEpoch(st.online.RetuneEpoch())
	corrRecs := s.corrPending[name]
	delete(s.corrPending, name)
	corrApplied, corrSkipped := 0, 0
	if corr := st.online.Corrections(); corr != nil {
		for _, rec := range corrRecs {
			if corr.Replay(rec) {
				corrApplied++
			} else {
				corrSkipped++
			}
		}
	} else {
		corrSkipped = len(corrRecs)
	}
	s.loadMu.Lock()
	if r := s.lastLoad; r != nil {
		r.WALPending -= len(recs) + len(corrRecs)
		r.WALReplayed += applied + corrApplied
		r.WALSkipped += skipped + corrSkipped
		r.WALStale += stale + mismatched
		// Pending replay is recovery work deferred to registration time;
		// fold it into the recovery wall clock so the report stays honest.
		r.RecoveryDuration += time.Since(t0)
	}
	s.loadMu.Unlock()
}

// checkpointLoop is the background checkpointer: a periodic Checkpoint
// until Close stops it. Errors are counted (walObs) and retried next tick.
func (s *System) checkpointLoop(every time.Duration) {
	defer close(s.checkpointDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Checkpoint() //nolint:errcheck
		case <-s.checkpointStop:
			return
		}
	}
}

// stopCheckpointer halts the background checkpointer and waits for it.
// Idempotent; a no-op when durability (or the checkpointer) is disabled.
func (s *System) stopCheckpointer() {
	if s.checkpointStop == nil {
		return
	}
	s.checkpointOnce.Do(func() { close(s.checkpointStop) })
	<-s.checkpointDone
}

// Checkpoint writes the current learned state to the durability
// directory's snapshot and compacts the WAL segments it makes redundant.
// The snapshot lands atomically (temp file, fsync, rename) so a crash
// mid-checkpoint leaves the previous checkpoint intact. Requires
// durability to be enabled.
//
// The compaction bound is taken before the save: every template's
// applied-sequence watermark only grows, so a snapshot written afterwards
// covers at least the records below the bound.
func (s *System) Checkpoint() (err error) {
	defer capturePanic("ppc.Checkpoint", &err)
	if s.wal == nil {
		return &SnapshotError{Op: "checkpoint", Err: fmt.Errorf("durability not enabled")}
	}
	t0 := time.Now()
	defer func() {
		if err != nil {
			s.walObs.CountCheckpointError()
		}
	}()
	minSeq := s.checkpointMinSeq()

	dir := s.opts.Durability.Dir
	tmp := filepath.Join(dir, checkpointName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return &SnapshotError{Op: "checkpoint", Err: err}
	}
	if err := s.SaveState(f); err != nil {
		f.Close()       //nolint:errcheck
		os.Remove(tmp)  //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return &SnapshotError{Op: "checkpoint", Err: err}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return &SnapshotError{Op: "checkpoint", Err: err}
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointName)); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return &SnapshotError{Op: "checkpoint", Err: err}
	}
	// Fsync the directory so the rename itself survives power loss.
	if df, derr := os.Open(dir); derr == nil {
		df.Sync()  //nolint:errcheck
		df.Close() //nolint:errcheck
	}
	if _, err := s.wal.Compact(minSeq); err != nil {
		return &SnapshotError{Op: "checkpoint", Err: err}
	}
	s.walObs.RecordCheckpoint(time.Since(t0), minSeq)
	return nil
}

// checkpointMinSeq returns the conservative WAL compaction bound: the
// smallest applied-sequence watermark across templates that have logged
// anything. Records at or below it are reflected in every learner a
// subsequent SaveState encodes.
func (s *System) checkpointMinSeq() uint64 {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	min := ^uint64(0)
	any := false
	for _, st := range s.templates {
		if seq := st.online.AppliedSeq(); seq > 0 {
			if seq < min {
				min = seq
			}
			any = true
		}
	}
	if !any {
		return 0
	}
	return min
}

// WALMetrics returns the durability layer's metrics snapshot, or nil when
// durability is disabled.
func (s *System) WALMetrics() *obsv.WALSnapshot {
	if s.wal == nil {
		return nil
	}
	snap := s.walObs.Snapshot()
	return &snap
}

// closeDurable flushes and closes the durability layer: final WAL sync,
// final checkpoint (so the next Open replays nothing), then the log
// itself. Appliers are already shut down by Close, so every acknowledged
// point is in the synopsis and on disk.
func (s *System) closeDurable() error {
	if s.wal == nil {
		return nil
	}
	var firstErr error
	if err := s.wal.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := s.Checkpoint(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := s.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
