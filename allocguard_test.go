package ppc_test

// Zero-allocation guard for the serving path. PR 2 made Predict and Insert
// allocation-free; this PR adds the observability layer on top, whose whole
// design contract is "no new allocations on the hot path". The guard turns
// that contract into a failing test instead of a benchmark number someone
// has to remember to read.

import (
	"os"
	"testing"

	"repro/internal/benchsuite"
)

func TestServingPathZeroAlloc(t *testing.T) {
	if benchsuite.RaceEnabled {
		t.Skip("race detector's shadow memory inflates allocation counts")
	}
	if testing.Short() {
		t.Skip("allocation guard runs full benchmarks; skipped in -short")
	}
	if err := benchsuite.CheckZeroAlloc(os.Stderr, benchsuite.ZeroAllocBenchmarks...); err != nil {
		t.Fatal(err)
	}
}
