package ppc_test

// Zero-allocation guard for the serving path. PR 2 made Predict and Insert
// allocation-free; this PR adds the observability layer on top, whose whole
// design contract is "no new allocations on the hot path". The guard turns
// that contract into a failing test instead of a benchmark number someone
// has to remember to read.

import (
	"os"
	"testing"

	"repro/internal/benchsuite"
)

func TestServingPathZeroAlloc(t *testing.T) {
	if benchsuite.RaceEnabled {
		t.Skip("race detector's shadow memory inflates allocation counts")
	}
	if testing.Short() {
		t.Skip("allocation guard runs full benchmarks; skipped in -short")
	}
	if err := benchsuite.CheckZeroAlloc(os.Stderr, benchsuite.ZeroAllocBenchmarks...); err != nil {
		t.Fatal(err)
	}
}

// TestRunPathAllocBudget holds the full Run path to the PR 7 allocation
// budget: under 500 allocs/op end to end (predict, rebind, batched
// execute, result materialization), down from ~6,800 in the per-row
// executor. The budget is deliberately loose against the measured steady
// state (~15 allocs/op) so it only fires on structural regressions — a
// per-row or per-batch allocation sneaking back into an operator — not on
// scheduler noise.
func TestRunPathAllocBudget(t *testing.T) {
	if benchsuite.RaceEnabled {
		t.Skip("race detector's shadow memory inflates allocation counts")
	}
	if testing.Short() {
		t.Skip("allocation guard runs full benchmarks; skipped in -short")
	}
	if err := benchsuite.CheckAllocBudget(os.Stderr, "EndToEndRun", 500); err != nil {
		t.Fatal(err)
	}
}
