GO ?= go

.PHONY: tier1 build vet test race chaos crash fuzz replication bench benchcmp profile clean

# Per-target budget for the fuzz smoke (`make fuzz FUZZTIME=2m` to go deep).
FUZZTIME ?= 15s

# Benchmark pipeline knobs: `make bench` re-measures the serving-path suite
# and writes $(BENCH_OUT) with benchcmp-style deltas against $(BENCH_BASE);
# `make benchcmp OLD=a.json NEW=b.json` diffs any two stored reports.
BENCH_BASE ?= bench_baseline.json
BENCH_OUT  ?= BENCH_PR10.json

# Where `make profile` drops its pprof output.
PROFILE_DIR ?= profiles

# The gate: build, vet, the full test suite under the race detector, and the
# allocation guards (a separate non-race invocation: the race runtime's
# bookkeeping inflates allocation counts, so the guards skip themselves
# under -race). TestServingPathZeroAlloc holds predict/insert/WAL-append at
# exactly zero allocs; TestRunPathAllocBudget holds the full batched Run
# path under its 500 allocs/op budget.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run 'TestServingPathZeroAlloc|TestRunPathAllocBudget' -count=1 .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Just the fault-injection / breaker / snapshot-damage suite.
chaos:
	$(GO) test -race -run 'TestChaos|TestConcurrent|TestParallel' -v .

# The durability suite: crash-image recovery properties, degrade-to-cold
# triples, and the kill-and-restart integration test against the real
# ppcserve binary.
crash:
	$(GO) test -race -run 'TestDurable|TestCrashRecovery|TestDegrade' -v .
	$(GO) test -race -run TestKillRestartRecovery -v ./cmd/ppcserve

# Short fuzz smoke over every decoder that reads crash-shaped bytes: the
# WAL frame decoder, the WAL directory scanner/repairer, the snapshot
# envelope, and the optional state-tail sections (corrections + retune). Go
# runs one fuzz target per invocation, hence four runs.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzScan -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz FuzzStateTailDecode -fuzztime $(FUZZTIME) ./internal/core

# The replication suite, bottom up: wire protocol and torn/corrupt frames,
# WAL tailing, leader/replica servers under fault injection (epoch fencing,
# admission, chaos), the client library, the in-process System-level
# contracts, and finally the process-boundary failover test — leader under
# load, replica attached, leader SIGKILLed and restarted — against the real
# ppcserve and ppcreplica binaries.
replication:
	$(GO) test -race ./internal/netproto ./internal/replica ./pkg/client
	$(GO) test -race -run 'TestReplication|TestLeaderReplica|TestLeaderRestart' -v .
	$(GO) test -race -run TestLeaderReplicaFailover -v ./cmd/ppcreplica

# Run the go-test serving-path benchmarks with allocation accounting, then
# regenerate the machine-readable report through cmd/ppcbench.
bench:
	$(GO) test -run '^$$' -bench 'ApproxLSHHist|ModelSnapshot|Run|Replica' -benchmem .
	$(GO) run ./cmd/ppcbench -bench -baseline $(BENCH_BASE) -benchout $(BENCH_OUT)

# Benchcmp-style diff of two stored bench reports.
benchcmp:
	$(GO) run ./cmd/ppcbench -benchcmp $(OLD) $(NEW)

# CPU and heap profiles of the end-to-end Run path, for chasing where the
# serving-path time goes (`go tool pprof $(PROFILE_DIR)/run.cpu.pprof`).
profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench BenchmarkEndToEndRun -benchmem \
		-cpuprofile $(PROFILE_DIR)/run.cpu.pprof \
		-memprofile $(PROFILE_DIR)/run.mem.pprof \
		-o $(PROFILE_DIR)/ppc.test .
	@echo "profiles written to $(PROFILE_DIR)/"

clean:
	$(GO) clean ./...
