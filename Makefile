GO ?= go

.PHONY: tier1 build vet test race chaos bench benchcmp clean

# Benchmark pipeline knobs: `make bench` re-measures the serving-path suite
# and writes $(BENCH_OUT) with benchcmp-style deltas against $(BENCH_BASE);
# `make benchcmp OLD=a.json NEW=b.json` diffs any two stored reports.
BENCH_BASE ?= bench_baseline.json
BENCH_OUT  ?= BENCH_PR4.json

# The gate: build, vet, the full test suite under the race detector, and the
# serving-path zero-allocation guard (a separate non-race invocation: the
# race runtime's bookkeeping inflates allocation counts, so the guard skips
# itself under -race).
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run TestServingPathZeroAlloc -count=1 .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Just the fault-injection / breaker / snapshot-damage suite.
chaos:
	$(GO) test -race -run 'TestChaos|TestConcurrent|TestParallel' -v .

# Run the go-test serving-path benchmarks with allocation accounting, then
# regenerate the machine-readable report through cmd/ppcbench.
bench:
	$(GO) test -run '^$$' -bench 'ApproxLSHHist|ModelSnapshot|Run' -benchmem .
	$(GO) run ./cmd/ppcbench -bench -baseline $(BENCH_BASE) -benchout $(BENCH_OUT)

# Benchcmp-style diff of two stored bench reports.
benchcmp:
	$(GO) run ./cmd/ppcbench -benchcmp $(OLD) $(NEW)

clean:
	$(GO) clean ./...
