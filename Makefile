GO ?= go

.PHONY: tier1 build vet test race chaos clean

# The gate: build, vet, and the full test suite under the race detector.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Just the fault-injection / breaker / snapshot-damage suite.
chaos:
	$(GO) test -race -run 'TestChaos|TestConcurrent' -v .

clean:
	$(GO) clean ./...
