package ppc

// Leader-side replication support: the System methods the ship server
// (internal/replica.Server) drives. A leader is simply a durable System —
// the WAL segments under the durability directory are the replication
// stream, and ReplicationSnapshot reuses the same per-template EncodeState
// bytes a checkpoint writes. Nothing here runs on the serving path.

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/netproto"
	"repro/internal/obsv"
)

// lineageName is the leader lineage epoch file under the durability
// directory.
const lineageName = "lineage.ppc"

// ReplicationEpoch returns the leader lineage epoch: a random 64-bit value
// minted on the durability directory's first use as a leader and persisted
// beside the checkpoint. A leader restarted over the same directory (crash
// recovery included) keeps its epoch — its WAL history is continuous, so
// replicas may resume. A leader started over a fresh directory mints a new
// epoch, and every replica that reconnects discards its fenced-out state
// instead of serving another lineage's predictions. Requires durability.
func (s *System) ReplicationEpoch() (uint64, error) {
	if s.wal == nil {
		return 0, fmt.Errorf("ppc: replication requires durability (Options.Durability.Dir)")
	}
	s.lineageOnce.Do(func() {
		s.lineage, s.lineageErr = loadOrMintLineage(s.opts.Durability.Dir)
	})
	return s.lineage, s.lineageErr
}

// loadOrMintLineage reads the persisted lineage epoch, minting and durably
// writing one on first use.
func loadOrMintLineage(dir string) (uint64, error) {
	path := filepath.Join(dir, lineageName)
	if data, err := os.ReadFile(path); err == nil && len(data) == 8 {
		if e := binary.LittleEndian.Uint64(data); e != 0 {
			return e, nil
		}
	}
	var buf [8]byte
	for {
		if _, err := rand.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("ppc: mint lineage epoch: %w", err)
		}
		// Zero is the protocol's "no epoch" sentinel; re-roll (p = 2^-64).
		if binary.LittleEndian.Uint64(buf[:]) != 0 {
			break
		}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("ppc: persist lineage epoch: %w", err)
	}
	if _, err := f.Write(buf[:]); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return 0, fmt.Errorf("ppc: persist lineage epoch: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// ReplicationSnapshot assembles a full state transfer for a connecting
// replica: every template's learner encoding (the same bytes a checkpoint
// writes), the dense plan fingerprint table, and the WAL floor the
// snapshot covers. The floor is taken BEFORE the learners are encoded —
// applied-sequence watermarks only grow, so the encoded state reflects at
// least every record below it and the overlap with the shipped tail is
// deduplicated by per-template watermark replay on the replica.
func (s *System) ReplicationSnapshot() (*netproto.Snapshot, error) {
	epoch, err := s.ReplicationEpoch()
	if err != nil {
		return nil, err
	}
	baseSeq := s.checkpointMinSeq()

	s.regMu.RLock()
	names := s.templateNamesLocked()
	states := make([]*templateState, len(names))
	for i, name := range names {
		states[i] = s.templates[name]
	}
	s.regMu.RUnlock()

	snap := &netproto.Snapshot{Epoch: epoch, BaseSeq: baseSeq}
	for i, name := range names {
		st := states[i]
		st.flush()
		var buf bytes.Buffer
		if err := st.online.EncodeState(&buf); err != nil {
			return nil, fmt.Errorf("ppc: encode template %s for shipping: %w", name, err)
		}
		snap.Templates = append(snap.Templates, netproto.TemplateState{Name: name, State: buf.Bytes()})
	}
	for id := 0; ; id++ {
		fp := s.reg.Fingerprint(id)
		if fp == "" {
			break
		}
		snap.Fingerprints = append(snap.Fingerprints, fp)
	}
	return snap, nil
}

// PredictRPC serves one wire predict request against the published model
// snapshots — the same lock-free path Run's learner decision uses, so a
// leader's RPC answer and its serving-path decision for the same point are
// the same prediction. Never invokes the optimizer and never feeds the
// learner: an RPC is a read.
func (s *System) PredictRPC(req netproto.PredictRequest) netproto.PredictResult {
	res := netproto.PredictResult{ID: req.ID}
	st, err := s.lookup(req.Template)
	if err != nil {
		res.Status = netproto.StatusUnknownTemplate
		res.ErrMsg = req.Template
		return res
	}
	if len(req.Point) != st.online.Dims() {
		res.Status = netproto.StatusBadRequest
		res.ErrMsg = fmt.Sprintf("point has %d coordinates, template %s expects %d",
			len(req.Point), req.Template, st.online.Dims())
		return res
	}
	pred, costEst, costOK := st.online.PredictModel(req.Point)
	res.Epoch = st.online.Epoch()
	res.ModelVersion = st.online.Model().Version()
	if !pred.OK {
		res.Status = netproto.StatusNoPrediction
		return res
	}
	res.Status = netproto.StatusOK
	res.Plan = int64(pred.Plan)
	res.Confidence = pred.Confidence
	res.Cost, res.CostKnown = costEst, costOK
	res.Fingerprint = s.reg.Fingerprint(pred.Plan)
	return res
}

// WALDir returns the live WAL segment directory ("" when durability is
// disabled). The in-process ship server tails it directly.
func (s *System) WALDir() string {
	if s.wal == nil {
		return ""
	}
	return s.wal.Dir()
}

// WALFirstSeq returns the lowest WAL sequence still on disk — the resume
// floor: a replica whose state predates it needs a snapshot.
func (s *System) WALFirstSeq() uint64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.FirstSeq()
}

// WALLastSeq returns the newest assigned WAL sequence (the leader's tail,
// shipped in heartbeats so replicas can compute lag).
func (s *System) WALLastSeq() uint64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.LastSeq()
}

// ReplObs exposes the replication metrics leaf (leader shipping gauges).
func (s *System) ReplObs() *obsv.ReplObs { return s.obs.Repl() }

// ReplMetrics returns the replication metrics snapshot, or nil when no
// replication activity has been observed and durability is disabled (the
// gauge surface would be all zeros).
func (s *System) ReplMetrics() *obsv.ReplSnapshot {
	if s.wal == nil {
		return nil
	}
	snap := s.obs.Repl().Snapshot()
	return &snap
}
