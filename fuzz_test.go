package ppc

// Fuzz coverage for the snapshot envelope decoder — the one parser in the
// facade that reads attacker-shaped bytes (a checkpoint file after a crash
// is arbitrary bytes as far as recovery is concerned). The invariant is the
// degrade contract: decodeSnapshot either returns a decoded system or a
// non-empty corruption reason; it never panics and never returns both.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"testing"
)

// validSnapshot frames a minimal savedSystem the way SaveState does —
// directly, without opening a System, so every fuzz worker's seed phase is
// instant. Mutations then explore the deep decode paths (checksum, gob
// payload) rather than dying at the magic check.
func validSnapshot(f *testing.F) []byte {
	f.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&savedSystem{DBScale: 2000, DBSeed: 5}); err != nil {
		f.Fatal(err)
	}
	body := payload.Bytes()
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], snapVersion)
	buf.Write(u16[:])
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(body)))
	buf.Write(u64[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(body, snapCRC))
	buf.Write(u32[:])
	buf.Write(body)
	return buf.Bytes()
}

func FuzzSnapshotDecode(f *testing.F) {
	snap := validSnapshot(f)
	f.Add(snap)
	f.Add(snap[:len(snap)/2])      // truncated payload
	f.Add(snap[:8])                // truncated header
	f.Add([]byte{})                // empty
	f.Add([]byte("PPCSNAP1junk")) // plausible magic, garbage after
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/2] ^= 0xff // checksum mismatch
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		in, reason := decodeSnapshot(bytes.NewReader(data))
		if (in == nil) == (reason == "") {
			t.Fatalf("decodeSnapshot broke the degrade contract: in=%v reason=%q", in, reason)
		}
	})
}
