package ppc

// End-to-end tests for the adaptive statistics layer: a deliberately
// distorted base estimator (stats.Distorted via Options.StatsWrap) makes
// the optimizer's selectivity estimates diverge from execution truth, and
// the correction learner must pull them back — shrinking the measured
// estimation q-error, flipping plan choices back to the ones an
// undistorted optimizer makes, and doing both without destabilizing the
// plan-space cluster learner.

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
	"repro/internal/tpch"
)

// distortLineitem inflates the base selectivity estimate of every
// predicate on lineitem.l_partkey by 6x — a biased base estimator within
// the correction clamp [1/8, 8], so the adaptive layer can fully absorb
// it.
func distortLineitem(p stats.Provider) stats.Provider {
	return &stats.Distorted{
		Provider: p,
		Sel: func(table, col string, sel float64) float64 {
			if table == "lineitem" && col == "l_partkey" {
				return sel * 6
			}
			return sel
		},
	}
}

// openDistorted opens a Scale-1000 system with the distorted base
// estimator, synchronous feedback (corrections apply before the next
// run's optimization), and the adaptive layer on or off.
func openDistorted(t *testing.T, disableAdaptive bool) *System {
	t.Helper()
	sys, err := Open(Options{
		TPCH:                 tpch.Config{Scale: 1000, Seed: 5},
		Online:               onlineForTest(),
		FeedbackQueue:        -1,
		StatsWrap:            distortLineitem,
		DisableAdaptiveStats: disableAdaptive,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() }) //nolint:errcheck
	return sys
}

// runSkewed issues n Q1 runs over a skewed neighborhood: a moderate
// s_date selectivity and a highly selective l_partkey bound. The range
// [0.01, 0.07] straddles the index/seq-scan crossover (~0.03 true
// selectivity), so correcting the 6x overestimate genuinely moves plan
// choices inside the workload.
func runSkewed(t *testing.T, sys *System, n int, seed int64) {
	t.Helper()
	tmpl, err := sys.Template("Q1")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		point := []float64{0.25 + rng.Float64()*0.1, 0.01 + rng.Float64()*0.06}
		inst, err := sys.Optimizer().InstanceAt(tmpl, point)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run("Q1", inst.Values); err != nil {
			t.Fatal(err)
		}
	}
}

// qErrorP95 extracts Q1's estimation q-error p95 from a metrics snapshot.
func qErrorP95(t *testing.T, sys *System) float64 {
	t.Helper()
	snap, err := sys.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range snap.Templates {
		if tm.Template == "Q1" {
			if tm.EstimationQError.Count == 0 {
				t.Fatal("no q-error observations recorded; harvest is not running")
			}
			return tm.EstimationQError.Quantile(0.95)
		}
	}
	t.Fatal("no Q1 in snapshot")
	return 0
}

// TestAdaptiveStatsReduceQError is the tentpole acceptance criterion:
// under a skewed workload whose true selectivities diverge from the (6x
// distorted) base estimates, the corrected system's p95 estimation
// q-error must be at least 2x lower than the static provider's.
func TestAdaptiveStatsReduceQError(t *testing.T) {
	static := openDistorted(t, true)
	adaptive := openDistorted(t, false)
	for _, sys := range []*System{static, adaptive} {
		if err := sys.Register("Q1", mustSQL(t, "Q1")); err != nil {
			t.Fatal(err)
		}
		runSkewed(t, sys, 400, 42)
	}

	staticP95 := qErrorP95(t, static)
	adaptiveP95 := qErrorP95(t, adaptive)
	t.Logf("estimation q-error p95: static %.2f, adaptive %.2f", staticP95, adaptiveP95)
	if staticP95 < 2 {
		t.Fatalf("distortion did not register: static p95 = %.2f", staticP95)
	}
	if adaptiveP95*2 > staticP95 {
		t.Errorf("adaptive p95 %.2f not 2x below static %.2f", adaptiveP95, staticP95)
	}

	// The adaptive layer's state is visible on the stats surface: warmed
	// correction sites and an advanced epoch.
	st, err := adaptive.TemplateStats("Q1")
	if err != nil {
		t.Fatal(err)
	}
	if st.CorrectionSites == 0 {
		t.Error("no correction site past cold start after 400 runs")
	}
	if st.CorrectionEpoch == 0 {
		t.Error("correction epoch never advanced despite a 6x base bias")
	}
	// The static system reports the layer disabled.
	if st2, err := static.TemplateStats("Q1"); err != nil || st2.CorrectionEpoch != 0 || st2.CorrectionSites != 0 {
		t.Errorf("static system reports correction state: %+v (err %v)", st2, err)
	}
}

// TestAdaptiveStatsFlipPlanChoice: the 6x overestimate pushes the
// optimizer off the plan it would pick with truthful statistics; once the
// corrections converge, the same optimizer at the same parameter values
// must flip back to the undistorted choice — and memo caches must have
// re-derived (invalidation counted) rather than serving stale costs.
func TestAdaptiveStatsFlipPlanChoice(t *testing.T) {
	// Ground truth: no distortion.
	truth, err := Open(Options{
		TPCH:          tpch.Config{Scale: 1000, Seed: 5},
		Online:        onlineForTest(),
		FeedbackQueue: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer truth.Close() //nolint:errcheck
	static := openDistorted(t, true)
	adaptive := openDistorted(t, false)
	for _, sys := range []*System{truth, static, adaptive} {
		if err := sys.Register("Q1", mustSQL(t, "Q1")); err != nil {
			t.Fatal(err)
		}
	}

	tmpl, err := adaptive.Template("Q1")
	if err != nil {
		t.Fatal(err)
	}
	probe, err := adaptive.Optimizer().InstanceAt(tmpl, []float64{0.3, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	fingerprint := func(sys *System) string {
		plan, err := sys.Optimizer().Optimize(tmpl.Query, probe.Values)
		if err != nil {
			t.Fatal(err)
		}
		return plan.Fingerprint
	}

	truthFP := fingerprint(truth)
	staticFP := fingerprint(static)
	if staticFP == truthFP {
		t.Fatalf("distortion does not change the plan at the probe point; test is vacuous (%s)", truthFP)
	}
	// Cold corrections are bit-identical to the static provider.
	if coldFP := fingerprint(adaptive); coldFP != staticFP {
		t.Fatalf("cold adaptive optimizer diverges from static: %s vs %s", coldFP, staticFP)
	}

	runSkewed(t, adaptive, 300, 7)
	if warmFP := fingerprint(adaptive); warmFP != truthFP {
		t.Errorf("corrected optimizer picks %s, undistorted optimizer picks %s", warmFP, truthFP)
	}
	// The correction shift invalidated the template's memo.
	snap, err := adaptive.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range snap.Templates {
		if tm.Template == "Q1" && tm.Counters.MemoInvalidations == 0 {
			t.Error("plan crossover moved but no memo invalidation was counted")
		}
	}
}

// TestAdaptiveDriftInteraction: when corrections shift a template's plan
// crossover points mid-workload, the plan-space cluster learner must
// re-converge on the new plan geometry — bounded drift resets and a
// recovering hit rate — rather than thrash.
func TestAdaptiveDriftInteraction(t *testing.T) {
	sys := openDistorted(t, false)
	if err := sys.Register("Q1", mustSQL(t, "Q1")); err != nil {
		t.Fatal(err)
	}

	// Phase 1 converges the learner on the distorted optimizer's plans
	// while the corrections warm up underneath it; phase 2 runs long after
	// every crossover shift has happened.
	runSkewed(t, sys, 300, 11)
	mid, err := sys.TemplateStats("Q1")
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := sys.Template("Q1")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	lateHits, lateRuns := 0, 0
	for i := 0; i < 300; i++ {
		point := []float64{0.25 + rng.Float64()*0.1, 0.04 + rng.Float64()*0.06}
		inst, err := sys.Optimizer().InstanceAt(tmpl, point)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run("Q1", inst.Values)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 200 {
			lateRuns++
			if res.CacheHit {
				lateHits++
			}
		}
	}
	final, err := sys.TemplateStats("Q1")
	if err != nil {
		t.Fatal(err)
	}
	// Re-convergence, not thrash: after the corrections settle, the
	// learner stops resetting and serves from cache again.
	if extra := final.Resets - mid.Resets; extra > 3 {
		t.Errorf("learner reset %d times after the corrections settled; crossover shift caused thrash", extra)
	}
	if lateHits*2 < lateRuns {
		t.Errorf("late-phase cache hits %d/%d; learner did not re-converge", lateHits, lateRuns)
	}
	if final.SamplesAbsorbed == 0 {
		t.Error("learner synopsis empty after drift interaction")
	}
}
