package ppc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/queries"
)

// onlineForTest returns an online configuration suited to small test
// workloads: modest radius, standard gamma, noise elimination on.
func onlineForTest() core.OnlineConfig {
	return core.OnlineConfig{
		Core:             core.Config{Radius: 0.05, Gamma: 0.8, NoiseElimination: true, Seed: 7},
		InvocationProb:   0.05,
		NegativeFeedback: true,
		Seed:             11,
	}
}

// execDirect runs a plan against the system's database outside the cache
// path.
func execDirect(sys *System, plan *optimizer.Plan) (*executor.Result, error) {
	return executor.New(sys.DB()).Run(plan)
}

// mustSQL returns the SQL of a standard template by name.
func mustSQL(t *testing.T, name string) string {
	t.Helper()
	for _, d := range queries.Defs {
		if d.Name == name {
			return d.SQL
		}
	}
	t.Fatalf("no standard template %s", name)
	return ""
}
